"""Command-line experiment runner: ``python -m repro <command>``.

Regenerates the paper's artifacts from the terminal without writing
code. Commands mirror the benchmark harness but expose the knobs
(episodes, database scale, seed) directly:

- ``info``       — build the database and print its inventory,
- ``plan``       — optimize one named JOB-lite query and EXPLAIN it,
- ``fig3a``      — train ReJOIN and print the convergence series,
- ``fig3b``      — evaluate a trained agent on the Figure 3b queries,
- ``fig3c``      — planning-time sweep over relation counts,
- ``lfd``        — §5.1 learning-from-demonstration comparison,
- ``bootstrap``  — §5.2 reward-switch comparison,
- ``incremental``— §5.3 curricula comparison,
- ``serve-bench``— drive a synthetic request stream through the
  optimizer service (throughput, latency percentiles, cache hit rate,
  fallback rate, per-stage latency breakdown, hands-free retraining
  from served experience),
- ``metrics``    — serve sample queries and print the unified metrics
  registry (Prometheus text exposition or JSON snapshot),
- ``trace``      — print the slowest per-request span trees, from a
  live probe or a trace JSONL written by ``serve-bench``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'Towards a Hands-Free "
        "Query Optimizer through Deep Learning' (CIDR 2019)",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="database scale factor (default 0.05)")
    parser.add_argument("--seed", type=int, default=42, help="database seed")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="build the JOB-lite database and summarize it")
    info.add_argument(
        "--probe", type=int, default=0, metavar="N",
        help="serve N sample queries twice through a fresh optimizer "
        "service so the printed counters show a live cache hit rate",
    )
    info.add_argument(
        "--estimator", choices=("histogram", "learned", "pessimistic"),
        default="histogram",
        help="cardinality lane installed on the database (learned is "
        "trained on executor truth from a small JOB-lite sample first); "
        "``--probe`` output then reports the active lane, its epoch "
        "staleness, and its per-lane counters",
    )
    info.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="probe through thread shards (default) or spawned worker "
        "processes; process mode adds the transport_* counters (pipe "
        "vs shared-memory bytes, control round-trips) to the rollup",
    )

    plan = sub.add_parser("plan", help="optimize one JOB-lite query")
    plan.add_argument("query", help="query name, e.g. 13c")

    fig3a = sub.add_parser("fig3a", help="train ReJOIN; print convergence")
    fig3a.add_argument("--episodes", type=int, default=2000)
    fig3a.add_argument("--save", help="directory for the agent checkpoint")

    fig3b = sub.add_parser("fig3b", help="Figure 3b per-query cost table")
    fig3b.add_argument("--episodes", type=int, default=2000)
    fig3b.add_argument("--load", help="agent checkpoint to reuse")

    fig3c = sub.add_parser("fig3c", help="planning-time sweep")
    fig3c.add_argument("--max-relations", type=int, default=14)
    fig3c.add_argument("--expert-lane", choices=("bitset", "legacy"),
                       default="bitset",
                       help="expert join-search implementation: the bitset "
                       "fast lane (default) or the seed DP enumerator")

    lfd = sub.add_parser("lfd", help="§5.1 learning from demonstration")
    lfd.add_argument("--episodes", type=int, default=120)

    boot = sub.add_parser("bootstrap", help="§5.2 reward-switch comparison")
    boot.add_argument("--phase1", type=int, default=300)
    boot.add_argument("--phase2", type=int, default=150)

    inc = sub.add_parser("incremental", help="§5.3 curricula comparison")
    inc.add_argument("--episodes-per-phase", type=int, default=60)

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the optimizer service on a synthetic request stream",
    )
    serve.add_argument("--requests", type=int, default=256,
                       help="total requests in the stream")
    serve.add_argument("--burst", type=int, default=32,
                       help="concurrent requests per micro-batch")
    serve.add_argument("--episodes", type=int, default=100,
                       help="pre-training episodes for the served policy")
    serve.add_argument("--cache-capacity", type=int, default=512)
    serve.add_argument("--threshold", type=float, default=1.5,
                       help="guardrail fallback threshold (learned/expert cost)")
    serve.add_argument("--zipf", type=float, default=1.3,
                       help="request-stream skew (Zipf exponent, >1)")
    serve.add_argument("--concurrency", type=int, default=1,
                       help="client threads driving the stream; >1 serves "
                       "through the concurrent front end (default 1: the "
                       "synchronous optimize_batch path)")
    serve.add_argument("--shards", type=int, default=2,
                       help="worker shards behind the front end "
                       "(consistent-hashed by query fingerprint)")
    serve.add_argument("--executor", choices=("thread", "process"),
                       default="thread",
                       help="shard execution mode: in-process threads "
                       "(default, GIL-shared) or one spawned worker "
                       "process per shard (true CPU parallelism; "
                       "requires --concurrency > 1)")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="batch-or-timeout deadline: a pending request "
                       "is flushed after at most this long even without a "
                       "full batch")
    serve.add_argument("--expert-lane", choices=("bitset", "legacy"),
                       default="bitset",
                       help="expert join-search implementation behind the "
                       "guardrail fallback (bitset fast lane by default)")
    serve.add_argument("--estimator",
                       choices=("histogram", "learned", "pessimistic"),
                       default="histogram",
                       help="cardinality lane behind every cost estimate: "
                       "the seed histogram formula (default), the learned "
                       "residual net (trained on executor truth before "
                       "serving starts), or the MCV upper-bound lane")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable tracing and events (metrics counters "
                       "stay on; used to measure telemetry overhead)")
    serve.add_argument("--sample-rate", type=float, default=1.0,
                       help="fraction of request traces retained "
                       "(SLO-exceeding traces are always retained)")
    serve.add_argument("--slo-ms", type=float, default=100.0,
                       help="latency SLO: slower requests are logged as "
                       "slow-query events with their full trace")
    serve.add_argument("--trace-out", metavar="PATH",
                       help="write retained traces as JSONL")
    serve.add_argument("--events-out", metavar="PATH",
                       help="append structured events as JSONL")
    serve.add_argument("--metrics-out", metavar="PATH",
                       help="write the merged metrics snapshot as JSON")
    serve.add_argument("--chaos", action="store_true",
                       help="inject seeded faults (worker crashes, latency "
                       "spikes, policy NaNs, stats-epoch races) into the "
                       "serving stack; requires --concurrency > 1")
    serve.add_argument("--chaos-rate", type=float, default=0.05,
                       help="per-request probability of each fault kind "
                       "when --chaos is on")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="fault-injection seed (decoupled from --seed so "
                       "the request stream stays fixed across chaos runs)")
    serve.add_argument("--drift", action="store_true",
                       help="closed-loop mode: shift the workload to a "
                       "disjoint query-family mix mid-run and let the "
                       "gated retraining daemon adapt the served policy "
                       "(hot-swap, rollback, adaptive guardrail)")
    serve.add_argument("--retrain-every", type=int, default=64,
                       metavar="K",
                       help="drift mode: run one retraining cycle every K "
                       "served requests")
    serve.add_argument("--smoke", action="store_true",
                       help="CI preset: tiny stream, 100%% sampling, tight "
                       "SLO, telemetry artifacts written and self-checked")

    metrics = sub.add_parser(
        "metrics",
        help="serve sample queries and print the unified metrics registry",
    )
    metrics.add_argument("--probe", type=int, default=8, metavar="N",
                         help="sample queries served (twice) to populate "
                         "the registry before printing")
    metrics.add_argument("--json", action="store_true",
                         help="JSON snapshot instead of Prometheus text")
    metrics.add_argument("--slo-ms", type=float, default=100.0)

    trace = sub.add_parser(
        "trace",
        help="print the slowest per-request span trees",
    )
    trace.add_argument("--slowest", type=int, default=5, metavar="N",
                       help="how many traces to print, slowest first")
    trace.add_argument("--probe", type=int, default=8, metavar="N",
                       help="sample queries served (twice) to produce "
                       "traces when no --input file is given")
    trace.add_argument("--input", metavar="PATH",
                       help="read traces from a JSONL file written by "
                       "serve-bench --trace-out instead of probing")
    trace.add_argument("--slo-ms", type=float, default=100.0)
    return parser


def _database(args):
    from repro.workloads import make_imdb_database

    print(f"building JOB-lite database (scale={args.scale}, seed={args.seed})...")
    return make_imdb_database(scale=args.scale, seed=args.seed, sample_size=10_000)


def _apply_estimator(db, lane, seed=0, train_limit=12, epochs=120):
    """Install the requested cardinality lane on ``db``.

    The learned lane is fitted before anything is served: one expert
    plan per sampled JOB-lite query is executed and every sub-plan's
    observed row count becomes a training pair (the paper's hands-free
    recipe — the optimizer's own feedback, no oracle).
    """
    if lane == "histogram":
        return db.estimator()
    from repro.db import (
        LearnedEstimator,
        PessimisticEstimator,
        harvest_training_pairs,
    )

    if lane == "pessimistic":
        return db.use_estimator(PessimisticEstimator)
    from repro.workloads import job_lite_workload

    est = db.use_estimator(LearnedEstimator(db.schema, db.stats, seed=seed))
    queries = list(
        job_lite_workload(variants=("a",)).filter(lambda q: q.n_relations <= 8)
    )[:train_limit]
    print(f"fitting learned cardinality lane on {len(queries)} queries...")
    pairs = harvest_training_pairs(db, queries)
    diag = est.fit(db, pairs, epochs=epochs)
    print(f"learned lane fitted: {len(pairs)} sub-plan pairs, "
          f"final loss {diag['final_loss']:.4f}")
    return est


def _print_estimator_probe(db):
    probe = db.estimator_probe()
    stale = probe.get("stale_tables") or ([] if not probe.get("stale") else ["?"])
    counts = ", ".join(f"{k}={v}" for k, v in sorted(probe["counts"].items()))
    print(f"\ncardinality estimator: lane={probe['lane']} "
          f"stale={'yes (' + ', '.join(stale) + ')' if probe.get('stale') else 'no'}"
          f"\n  counters: {counts}")


def _cmd_info(args) -> int:
    from repro.core.reporting import ascii_table

    db = _database(args)
    _apply_estimator(db, args.estimator, seed=args.seed)
    rows = [
        (name, table.n_rows, table.n_pages, len(db.indexed_columns(name)))
        for name, table in sorted(db.tables.items())
    ]
    print(ascii_table(["table", "rows", "pages", "indexed columns"], rows))
    print(f"\ntotal rows: {db.total_rows():,}")

    if args.probe > 0:
        from repro.workloads import job_lite_workload

        probes = list(
            job_lite_workload(variants=("a",)).filter(lambda q: q.n_relations <= 8)
        )[: args.probe]
        # Serve through the concurrent front end so the printed counters
        # are the per-shard rollup an operator would see in production.
        # Two passes: the second pass hits the plans the first cached.
        with _make_frontend(db, executor=args.executor) as frontend:
            frontend.optimize_batch(probes)
            frontend.optimize_batch(probes)
            counters = frontend.counters()
        print("\nserving counters (rolled up over "
              f"{int(counters['frontend_shards'])} shards):")
        print(ascii_table(["counter", "value"], sorted(counters.items())))
    else:
        print("\nserving counters: run with --probe N to serve sample "
              "queries and inspect live cache/fallback rates")
    _print_estimator_probe(db)
    return 0


def _make_service(db, agent=None, planner=None, featurizer=None,
                  reward_source=None, expert_lane="bitset", telemetry=None,
                  **config_kwargs):
    """An :class:`OptimizerService` over ``db`` (untrained policy unless
    an agent is given — counters and routing behave the same either way)."""
    from repro.core.featurize import QueryFeaturizer
    from repro.optimizer import Planner, SubPlanCostMemo
    from repro.rl.ppo import PPOAgent
    from repro.serving import OptimizerService, ServingConfig

    featurizer = featurizer or QueryFeaturizer(db.schema)
    if agent is None:
        agent = PPOAgent(
            featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(0)
        )
    # The bitset fast lane makes exhaustive DP affordable up to the
    # PostgreSQL default of 12 relations; the legacy lane keeps the old
    # conservative threshold.
    threshold = 12 if expert_lane == "bitset" else 8
    return OptimizerService(
        db,
        agent,
        planner=planner
        or Planner(db, geqo_threshold=threshold, cost_memo=SubPlanCostMemo(),
                   expert_lane=expert_lane),
        featurizer=featurizer,
        config=ServingConfig(**config_kwargs),
        reward_source=reward_source,
        telemetry=telemetry,
    )


def _make_frontend(db, agent=None, featurizer=None, reward_source=None,
                   n_shards=2, max_batch=16, max_delay_ms=2.0,
                   expert_lane="bitset", telemetry=None, executor="thread",
                   **config_kwargs):
    """A :class:`ServingFrontEnd` over ``db``: batch-or-timeout flusher
    in front of ``n_shards`` fingerprint-sharded worker services
    (in-process threads by default; ``executor="process"`` spawns one
    worker process per shard behind the same API)."""
    from repro.core.featurize import QueryFeaturizer
    from repro.rl.ppo import PPOAgent
    from repro.serving import FrontEndConfig, ServingConfig, ServingFrontEnd

    featurizer = featurizer or QueryFeaturizer(db.schema)
    if agent is None:
        agent = PPOAgent(
            featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(0)
        )
    return ServingFrontEnd.build(
        db,
        agent,
        featurizer=featurizer,
        serving_config=ServingConfig(**config_kwargs),
        config=FrontEndConfig(
            n_shards=n_shards, max_batch=max_batch, max_delay_ms=max_delay_ms,
            executor=executor,
        ),
        # Keyword recipe instead of a closure: the same planner is built
        # per shard in either mode, and the kwargs pickle across the
        # spawn boundary in process mode (a planner_factory cannot).
        planner_kwargs={
            "geqo_threshold": 12 if expert_lane == "bitset" else 8,
            "expert_lane": expert_lane,
        },
        reward_source=reward_source,
        telemetry=telemetry,
    )


def _make_telemetry(sample_rate=1.0, slo_ms=100.0, seed=0, events_path=None):
    """The shared telemetry spine for one CLI serving stack."""
    from repro.obs import Telemetry, TelemetryConfig

    return Telemetry(TelemetryConfig(
        sample_rate=sample_rate, slo_ms=slo_ms, seed=seed,
        events_path=events_path,
    ))


def _probe_telemetry(args, telemetry):
    """Serve ``args.probe`` sample queries twice through a telemetry-
    attached front end (the second pass hits the plan caches), then run
    one retraining-daemon cycle over the collected experience so the
    learning-loop surface (policy_version gauge, promotion/rejection/
    rollback counters, retrain-duration histogram, ``policy_swap``
    events) is populated too. Shared by ``metrics`` and ``trace``."""
    from repro.core import ExpertBaseline, Trainer, TrainingConfig
    from repro.core.featurize import QueryFeaturizer
    from repro.rl.ppo import PPOAgent
    from repro.serving import LearningConfig, RetrainingDaemon
    from repro.workloads import job_lite_workload

    db = _database(args)
    probes = list(
        job_lite_workload(variants=("a",)).filter(lambda q: q.n_relations <= 8)
    )[: args.probe]
    featurizer = QueryFeaturizer(db.schema)
    agent = PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(0)
    )
    with _make_frontend(
        db, agent=agent, featurizer=featurizer, telemetry=telemetry
    ) as frontend:
        trainer = Trainer(
            None, agent, ExpertBaseline(db), np.random.default_rng(args.seed),
            TrainingConfig(batch_size=4),
        )
        daemon = RetrainingDaemon(
            frontend, trainer, probes,
            config=LearningConfig(
                retrain_every=max(1, len(probes)),
                min_trajectories=1,
                gate_slack=1.25,
                latency_probes_per_cycle=2,
                probe_budget_ms=100.0,
                min_latency_pairs=4,
            ),
        )
        frontend.optimize_batch(probes)
        frontend.optimize_batch(probes)
        daemon.maybe_run()
        return frontend.metrics_registry()


def _cmd_metrics(args) -> int:
    import json

    telemetry = _make_telemetry(slo_ms=args.slo_ms, seed=args.seed)
    registry = _probe_telemetry(args, telemetry)
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2, default=str))
    else:
        print(registry.exposition(), end="")
    return 0


def _cmd_trace(args) -> int:
    if args.input:
        from repro.obs.trace import TraceStore

        traces = TraceStore.read_jsonl(args.input)
        slowest = sorted(
            traces, key=lambda t: t.duration_ms, reverse=True
        )[: args.slowest]
    else:
        telemetry = _make_telemetry(slo_ms=args.slo_ms, seed=args.seed)
        _probe_telemetry(args, telemetry)
        slowest = telemetry.store.slowest(args.slowest)
    if not slowest:
        print("no traces retained (raise --probe or check --input)")
        return 0
    for trace in slowest:
        print(trace.format())
        print()
    return 0


def _cmd_plan(args) -> int:
    from repro.optimizer import Planner
    from repro.workloads.job import job_lite_query

    db = _database(args)
    query = job_lite_query(args.query)
    planner = Planner(db)
    result = planner.optimize(query)
    print(f"\n{query.sql()}\n")
    print(f"planned in {result.planning_time_ms:.1f} ms "
          f"({'exhaustive DP' if result.used_exhaustive_search else 'GEQO'})\n")
    print(db.explain_analyze(result.plan, query))
    return 0


def _trained_setup(args, episodes: int):
    from repro.core import (
        ExpertBaseline,
        JoinOrderEnv,
        Trainer,
        TrainingConfig,
        make_agent,
    )
    from repro.core.rewards import CostModelReward
    from repro.optimizer import Planner, SubPlanCostMemo
    from repro.rl.ppo import PPOConfig
    from repro.workloads import job_lite_workload

    db = _database(args)
    lane = getattr(args, "expert_lane", "bitset")
    planner = Planner(db, geqo_threshold=12 if lane == "bitset" else 8,
                      cost_memo=SubPlanCostMemo(), expert_lane=lane)
    baseline = ExpertBaseline(db, planner)
    workload = job_lite_workload(variants=("a", "b", "c")).filter(
        lambda q: q.n_relations <= 11
    )
    rng = np.random.default_rng(7)
    env = JoinOrderEnv(
        db, workload,
        reward_source=CostModelReward(db, "relative", baseline),
        planner=planner, rng=rng, forbid_cross_products=False,
    )
    agent = make_agent(env, rng, "ppo", PPOConfig(lr=1e-3, entropy_coef=3e-3))
    trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))
    print(f"training for {episodes} episodes...")
    start = time.time()
    log = trainer.run(episodes)
    print(f"trained in {time.time() - start:.0f}s")
    return db, env, agent, trainer, baseline, log


def _cmd_fig3a(args) -> int:
    from repro.core.reporting import ascii_table

    _db, _env, agent, _trainer, _baseline, log = _trained_setup(args, args.episodes)
    rel = log.relative_costs()
    bucket = max(1, args.episodes // 10)
    rows = [
        (end, f"{np.median(rel[max(0, end - bucket):end]) * 100:.0f}%")
        for end, _ in log.relative_cost_series(bucket_size=bucket)
    ]
    print("\nFigure 3a — median plan cost relative to the expert:")
    print(ascii_table(["episodes", "median rel. cost"], rows))
    if args.save:
        from repro.core.checkpoint import save_agent

        path = save_agent(agent, args.save)
        print(f"\nagent checkpoint written to {path}")
    return 0


def _cmd_fig3b(args) -> int:
    from repro.core.reporting import ascii_table, geometric_mean
    from repro.workloads.job import FIGURE_3B_QUERIES, job_lite_query

    db, env, agent, trainer, baseline, _ = _trained_setup(args, args.episodes)
    if args.load:
        from repro.core.checkpoint import load_agent

        agent = load_agent(args.load)
        trainer.agent = agent
        print(f"loaded agent checkpoint from {args.load}")
    rows = []
    ratios = []
    for name in FIGURE_3B_QUERIES:
        query = job_lite_query(name)
        if query.n_relations > env.featurizer.max_relations:
            continue
        record = trainer.evaluate([query])[name]
        ratios.append(record.relative_cost)
        rows.append(
            (name, f"{record.expert_cost:.0f}", f"{record.cost:.0f}",
             f"{record.relative_cost:.2f}x")
        )
    print("\nFigure 3b — final plan cost (expert vs ReJOIN):")
    print(ascii_table(["query", "expert", "rejoin", "ratio"], rows))
    print(f"geometric mean: {geometric_mean(ratios):.2f}")
    return 0


def _cmd_fig3c(args) -> int:
    from repro.core.featurize import QueryFeaturizer, SlotState
    from repro.core.reporting import ascii_table
    from repro.optimizer import Planner
    from repro.rl.ppo import PPOAgent
    from repro.workloads.generator import RandomQueryGenerator

    db = _database(args)
    # Same lane-dependent threshold as the serving paths: the bitset
    # lane sweeps exhaustive DP up to the PostgreSQL default.
    planner = Planner(db,
                      geqo_threshold=12 if args.expert_lane == "bitset" else 8,
                      expert_lane=args.expert_lane)
    gen = RandomQueryGenerator(db)
    rng = np.random.default_rng(0)
    featurizer = QueryFeaturizer(db.schema, max_relations=args.max_relations)
    agent = PPOAgent(featurizer.state_dim, featurizer.n_pair_actions, rng)
    rows = []
    for n in range(4, args.max_relations + 1):
        query = gen.generate(rng, n, name=f"sweep-{n}")
        t0 = time.perf_counter()
        planner.choose_join_order(query)
        expert_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        state = SlotState(query, featurizer.max_relations)
        cards = db.cardinalities(query)
        while not state.done:
            vec = featurizer.featurize(state, cards)
            mask = featurizer.pair_mask(state)
            action, _ = agent.act(vec, mask, rng, greedy=True)
            state.join(*featurizer.decode_pair(action))
        rejoin_ms = (time.perf_counter() - t0) * 1e3
        rows.append((n, f"{expert_ms:.2f}", f"{rejoin_ms:.2f}"))
    print("\nFigure 3c — join-order selection time (ms):")
    from repro.core.reporting import ascii_table

    print(ascii_table(["relations", "expert", "rejoin"], rows))
    return 0


def _cmd_lfd(args) -> int:
    from repro.core import (
        DemonstrationSet,
        ExpertBaseline,
        JoinOrderEnv,
        LfDAgent,
        LfDConfig,
        LfDTrainer,
    )
    from repro.core.rewards import LatencyReward
    from repro.workloads import job_lite_workload

    db = _database(args)
    baseline = ExpertBaseline(db)
    workload = job_lite_workload(variants=("a", "b")).filter(
        lambda q: 4 <= q.n_relations <= 7
    )
    env = JoinOrderEnv(
        db, workload,
        reward_source=LatencyReward(db, "relative", baseline, budget_factor=30.0),
        rng=np.random.default_rng(0), forbid_cross_products=False,
    )
    demos = DemonstrationSet.collect(env, list(workload))
    print(f"collected {len(demos)} demonstrations")
    for imitate in (True, False):
        rng = np.random.default_rng(1)
        agent = LfDAgent(env.state_dim, env.n_actions, rng, LfDConfig())
        trainer = LfDTrainer(env, agent, demos, baseline, rng)
        if imitate:
            trainer.imitation_phase()
        log = trainer.fine_tune(args.episodes)
        label = "LfD" if imitate else "tabula rasa"
        print(f"{label}: catastrophic {log.timeout_fraction() * 100:.0f}%, "
              f"final median rel. latency "
              f"{np.median(log.relative_latencies()[-40:]):.2f}")
    return 0


def _cmd_bootstrap(args) -> int:
    from repro.core.bootstrap import BootstrapConfig, BootstrapTrainer
    from repro.workloads import job_lite_workload

    db = _database(args)
    workload = job_lite_workload(variants=("a", "b")).filter(
        lambda q: 4 <= q.n_relations <= 7
    )
    for mode in ("naive", "scaled", "transfer"):
        config = BootstrapConfig(
            phase1_episodes=args.phase1, phase2_episodes=args.phase2,
            calibration_episodes=20, mode=mode, batch_size=8,
            latency_budget_factor=30.0,
        )
        trainer = BootstrapTrainer(db, workload, np.random.default_rng(9), config)
        result = trainer.run()
        p1 = np.median([r.reward for r in result.phase1_log.records[-50:]])
        p2 = np.median([r.reward for r in result.phase2_log.records[:50]])
        print(f"{mode:9s} reward jump at switch: {abs(p2 - p1):6.2f}   "
              f"regression: {result.regression_ratio(window=40):.2f}x")
    return 0


def _cmd_incremental(args) -> int:
    from repro.core.incremental import (
        IncrementalTrainer,
        flat_curriculum,
        hybrid_curriculum,
        pipeline_curriculum,
        relations_curriculum,
    )

    db = _database(args)
    per_phase = args.episodes_per_phase
    curricula = {
        "pipeline": pipeline_curriculum(per_phase, max_relations=5),
        "relations": relations_curriculum(per_phase, relation_steps=(2, 3, 5)),
        "hybrid": hybrid_curriculum(per_phase, final_relations=5),
        "flat": flat_curriculum(per_phase * 4, max_relations=5),
    }
    for name, curriculum in curricula.items():
        trainer = IncrementalTrainer(
            db, np.random.default_rng(2), queries_per_phase=30, batch_size=8
        )
        results = trainer.run(curriculum)
        print(f"{name:10s} final median rel. cost: "
              f"{trainer.final_quality(results, tail=per_phase // 2):.2f}")
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.core.reporting import ascii_table

    if args.smoke:
        # CI preset: small enough to finish in seconds, 100% sampling so
        # every request leaves a trace, and an SLO tight enough that the
        # slow-query lane is provably exercised.
        args.requests = 32
        args.burst = 8
        args.episodes = 4
        args.concurrency = 4
        args.shards = 2
        args.sample_rate = 1.0
        args.slo_ms = min(args.slo_ms, 0.5)
        args.trace_out = args.trace_out or "TRACES_serving.jsonl"
        args.events_out = args.events_out or "EVENTS_serving.jsonl"
        args.metrics_out = args.metrics_out or "METRICS_serving.json"
        if args.drift:
            # The closed loop needs enough traffic for several gated
            # retraining cycles on each side of the shift.
            args.requests = 96
            args.retrain_every = min(args.retrain_every, 16)

    # Validate before the (expensive) database build and pre-training.
    if args.zipf <= 1.0:
        print("serve-bench: --zipf must be > 1", file=sys.stderr)
        return 2
    if args.threshold <= 0:
        print("serve-bench: --threshold must be positive", file=sys.stderr)
        return 2
    if args.requests < 0 or args.burst < 1 or args.cache_capacity < 1:
        print("serve-bench: --requests must be >= 0, --burst and "
              "--cache-capacity >= 1", file=sys.stderr)
        return 2
    if args.concurrency < 1 or args.shards < 1 or args.max_delay_ms < 0:
        print("serve-bench: --concurrency and --shards must be >= 1, "
              "--max-delay-ms >= 0", file=sys.stderr)
        return 2
    if not 0.0 <= args.sample_rate <= 1.0:
        print("serve-bench: --sample-rate must be in [0, 1]", file=sys.stderr)
        return 2
    if not 0.0 <= args.chaos_rate <= 1.0:
        print("serve-bench: --chaos-rate must be in [0, 1]", file=sys.stderr)
        return 2
    if args.chaos and args.concurrency < 2 and not args.drift:
        print("serve-bench: --chaos needs the concurrent front end "
              "(pass --concurrency > 1)", file=sys.stderr)
        return 2
    if args.executor == "process" and args.concurrency < 2 and not args.drift:
        print("serve-bench: --executor process needs the concurrent "
              "front end (pass --concurrency > 1)", file=sys.stderr)
        return 2
    if args.retrain_every < 1:
        print("serve-bench: --retrain-every must be >= 1", file=sys.stderr)
        return 2
    if args.drift and args.requests < 2 * args.retrain_every:
        print("serve-bench: --drift needs --requests >= 2x "
              "--retrain-every (one retraining cycle per phase)",
              file=sys.stderr)
        return 2

    telemetry = None
    if not args.no_telemetry:
        telemetry = _make_telemetry(
            sample_rate=args.sample_rate, slo_ms=args.slo_ms,
            seed=args.seed, events_path=args.events_out,
        )

    db, env, agent, trainer, _baseline, _log = _trained_setup(args, args.episodes)
    # Swap the cardinality lane before any service is built; the swap's
    # epoch bump flushes estimates the policy pre-training memoized.
    _apply_estimator(db, args.estimator, seed=args.seed)

    # Synthetic request stream: Zipf-skewed repetition over the workload,
    # like production traffic where a few query shapes dominate.
    rng = np.random.default_rng(args.seed)
    workload = env.workload
    stream = [
        workload[int((rank - 1) % len(workload))]
        for rank in rng.zipf(args.zipf, size=args.requests)
    ]

    drift_report = None
    if args.drift:
        total_s, latency, counters, registry, drift_report = _serve_drift(
            args, db, env, agent, trainer, _baseline, telemetry
        )
        episodes = []  # the daemon consumed the experience buffers
        fault_report = None
    elif args.concurrency > 1:
        total_s, latency, counters, episodes, registry, fault_report = (
            _serve_concurrent(args, db, env, agent, stream, telemetry)
        )
    else:
        total_s, latency, counters, episodes, registry = _serve_synchronous(
            args, db, env, agent, stream, telemetry
        )
        fault_report = None

    print(ascii_table(
        ["metric", "value"],
        [
            ("throughput (req/s)", f"{args.requests / total_s:.1f}"),
            ("p50 latency (ms)", f"{latency['p50_ms']:.2f}"),
            ("p95 latency (ms)", f"{latency['p95_ms']:.2f}"),
            ("cache hit rate", f"{counters['cache_hit_rate'] * 100:.1f}%"),
            ("fallback rate", f"{counters['fallback_rate'] * 100:.1f}%"),
            ("expert plan p50 (ms)",
             f"{counters.get('expert_plan_ms_p50', 0.0):.2f}"),
            ("expert plan p95 (ms)",
             f"{counters.get('expert_plan_ms_p95', 0.0):.2f}"),
            ("dp subsets enumerated",
             f"{counters.get('dp_subsets_enumerated', 0.0):.0f}"),
            ("dp entries pruned", f"{counters.get('dp_pruned', 0.0):.0f}"),
        ],
    ))
    print("\nservice counters:")
    print(ascii_table(["counter", "value"], sorted(counters.items())))
    _print_estimator_probe(db)

    if drift_report is not None:
        loop = drift_report["loop"]
        threshold = loop["guardrail_threshold"]
        print(f"\nhands-free learning loop (retrain every "
              f"{args.retrain_every} requests, shift after "
              f"{drift_report['shift_after']}):")
        print(ascii_table(
            ["metric", "value"],
            [
                ("policy version", f"{loop['policy_version']}"),
                ("retraining cycles", f"{loop['cycles']}"),
                ("gated promotions", f"{loop['promotions']}"),
                ("rejected updates", f"{loop['rejections']}"),
                ("rollbacks", f"{loop['rollbacks']}"),
                ("poisoned cycles", f"{loop['poisoned_cycles']}"),
                ("gate score (cost / exact DP)",
                 "n/a" if loop["current_score"] is None
                 else f"{loop['current_score']:.3f}"),
                ("adaptive guardrail threshold",
                 "unfitted" if threshold is None else f"{threshold:.3f}"),
                ("rel. cost, first post-shift window",
                 f"{drift_report['post_shift_first']:.3f}"),
                ("rel. cost, last post-shift window",
                 f"{drift_report['post_shift_last']:.3f}"),
            ],
        ))

    if fault_report is not None:
        print(f"\nchaos (rate {args.chaos_rate:.2%} per fault kind, "
              f"seed {args.chaos_seed}):")
        print(ascii_table(
            ["metric", "value"],
            [
                ("faults injected", f"{fault_report['total_injected']}"),
                *[
                    (f"  {kind}", f"{count}")
                    for kind, count in sorted(
                        fault_report["injected"].items()
                    )
                    if count
                ],
                ("requests succeeded", f"{fault_report['succeeded']}"),
                ("requests failed", f"{fault_report['failed']}"),
                ("success rate", f"{fault_report['success_rate']:.2%}"),
                ("unresolved futures", f"{fault_report['outstanding']}"),
                *(
                    [("worker respawns", f"{fault_report['respawns']}")]
                    if "respawns" in fault_report else []
                ),
            ],
        ))

    if telemetry is not None:
        breakdown = telemetry.stage_summary()
        if breakdown:
            print("\nper-stage latency breakdown (ms):")
            print(ascii_table(
                ["stage", "count", "mean", "p50", "p95", "p99"],
                [
                    (stage, f"{s['count']:.0f}", f"{s['mean']:.3f}",
                     f"{s['p50']:.3f}", f"{s['p95']:.3f}", f"{s['p99']:.3f}")
                    for stage, s in breakdown.items()
                ],
            ))
        print(f"\ntelemetry: {len(telemetry.store)} traces retained, "
              f"{len(telemetry.slow_queries())} slow queries "
              f"(SLO {telemetry.config.slo_ms}ms), "
              f"events {telemetry.events.counts()}")
        if args.trace_out:
            written = telemetry.store.write_jsonl(args.trace_out)
            print(f"wrote {written} traces to {args.trace_out}")
        if args.events_out:
            print(f"events appended to {args.events_out}")
    if args.metrics_out:
        import json

        with open(args.metrics_out, "w") as fh:
            json.dump(registry.snapshot(), fh, indent=2, default=str)
        print(f"metrics snapshot written to {args.metrics_out}")

    if episodes:
        events = telemetry.events if telemetry is not None else None
        replay_log = trainer.replay(episodes, events=events)
        print(f"\nhands-free retraining: replayed {len(replay_log)} served "
              f"episodes into the policy "
              f"(median reward {np.median(replay_log.rewards()):.2f})")

    if args.smoke and telemetry is not None:
        failures = _smoke_self_check(args, telemetry, registry, fault_report)
        if drift_report is not None:
            failures.extend(_drift_smoke_check(drift_report))
        if failures:
            for failure in failures:
                print(f"smoke self-check FAILED: {failure}", file=sys.stderr)
            return 1
        print("\nsmoke self-check passed: exposition parses, slow-query "
              "JSONL round-trips, traces round-trip")
    return 0


def _smoke_self_check(args, telemetry, registry, fault_report=None):
    """CI assertions over the telemetry artifacts just produced."""
    from repro.obs import parse_exposition
    from repro.obs.events import EventLog
    from repro.obs.trace import TraceStore

    failures = []
    if fault_report is not None:
        if fault_report["total_injected"] < 1:
            failures.append(
                f"chaos injected no faults (rate {args.chaos_rate}, "
                f"seed {args.chaos_seed})"
            )
        if fault_report["success_rate"] < 0.995:
            failures.append(
                f"chaos success rate {fault_report['success_rate']:.2%} "
                "below the 99.5% floor"
            )
        if fault_report["outstanding"]:
            failures.append(
                f"{fault_report['outstanding']} futures left unresolved "
                "after the chaos stream"
            )
    try:
        samples = parse_exposition(registry.exposition())
        if not samples:
            failures.append("exposition produced no samples")
        if "repro_serving_requests_total" not in samples:
            failures.append("exposition lacks repro_serving_requests_total")
    except ValueError as exc:
        failures.append(f"exposition does not parse: {exc}")
    try:
        with open(args.events_out) as fh:
            events = EventLog.parse_jsonl(fh.read())
        if not any(e["kind"] == "slow_query" for e in events):
            failures.append(
                f"no slow_query events in {args.events_out} "
                f"(SLO {args.slo_ms}ms)"
            )
    except (OSError, ValueError) as exc:
        failures.append(f"event JSONL round-trip failed: {exc}")
    try:
        traces = TraceStore.read_jsonl(args.trace_out)
        if not traces:
            failures.append(f"no traces in {args.trace_out}")
        elif not any(t.root.children for t in traces):
            failures.append("round-tripped traces have no spans")
    except (OSError, ValueError, KeyError) as exc:
        failures.append(f"trace JSONL round-trip failed: {exc}")
    return failures


def _serve_synchronous(args, db, env, agent, stream, telemetry=None):
    """The pre-batched burst loop (one caller, ``optimize_batch`` bursts)."""
    service = _make_service(
        db,
        agent=agent,
        planner=env.planner,
        featurizer=env.featurizer,
        # Reuse the training reward so experience collected while serving
        # is on the same scale the policy (and value net) learned on.
        reward_source=env.reward_source,
        telemetry=telemetry,
        cache_capacity=args.cache_capacity,
        regression_threshold=args.threshold,
        max_batch_size=args.burst,
    )
    print(f"serving {args.requests} requests in bursts of {args.burst}...")
    start = time.perf_counter()
    for burst_start in range(0, len(stream), args.burst):
        service.optimize_batch(stream[burst_start : burst_start + args.burst])
    total_s = time.perf_counter() - start
    episodes = (
        service.experience.drain()
        if service.experience is not None and len(service.experience)
        else []
    )
    return (
        total_s,
        service.latency_summary(),
        service.counters(),
        episodes,
        service.metrics_registry(),
    )


#: Disjoint JOB-lite join-graph regions for the drift scenario:
#: company/keyword-centric families, then cast/person-centric ones.
_DRIFT_FAMILIES_A = (1, 2, 4, 5, 11, 15)
_DRIFT_FAMILIES_B = (6, 8, 9, 10, 17, 20)


def _drift_workload(families):
    from repro.workloads import job_lite_workload

    names = {f"{f}{v}" for f in families for v in ("a", "b", "c")}
    return [
        q
        for q in job_lite_workload(variants=("a", "b", "c"))
        if q.name in names and q.n_relations <= 11
    ]


def _serve_drift(args, db, env, agent, trainer, baseline, telemetry=None):
    """The closed loop: serve workload A, shift to workload B mid-run,
    and let the retraining daemon adapt the policy between bursts.

    Cycles run deterministically between bursts (``maybe_run``, not the
    polling thread) so the run is reproducible given the seed.
    """
    from repro.serving import (
        FaultConfig,
        FaultInjector,
        LearningConfig,
        RetrainingDaemon,
    )

    frontend = _make_frontend(
        db,
        agent=agent,
        featurizer=env.featurizer,
        reward_source=env.reward_source,
        n_shards=args.shards,
        max_batch=args.burst,
        max_delay_ms=args.max_delay_ms,
        expert_lane=getattr(args, "expert_lane", "bitset"),
        telemetry=telemetry,
        executor=getattr(args, "executor", "thread"),
        cache_capacity=args.cache_capacity,
        regression_threshold=args.threshold,
        max_batch_size=args.burst,
    )
    workload_a = _drift_workload(_DRIFT_FAMILIES_A)
    workload_b = _drift_workload(_DRIFT_FAMILIES_B)
    # The gate's holdout spans both phases: a candidate must stay sound
    # on the queries it is about to serve, not just the ones it saw.
    holdout = workload_a[:4] + workload_b[:4]
    config = LearningConfig(
        retrain_every=args.retrain_every,
        min_trajectories=4,
        # "No worse than serving" with a little slack: drift-mode
        # promotions chase recovery, not strict monotone improvement.
        gate_slack=1.05,
        latency_probes_per_cycle=4,
        probe_budget_ms=250.0,
        min_latency_pairs=12,
        rollback_window=max(16, args.retrain_every),
    )
    injector = None
    if args.chaos:
        injector = FaultInjector(FaultConfig(
            replay_poison_rate=args.chaos_rate,
            seed=args.chaos_seed,
        ))
    daemon = RetrainingDaemon(
        frontend, trainer, holdout, config=config, fault_injector=injector
    )

    rng = np.random.default_rng(args.seed)
    shift_after = args.requests // 2

    def phase_stream(workload, size):
        return [
            workload[int((rank - 1) % len(workload))]
            for rank in rng.zipf(args.zipf, size=size)
        ]

    stream = phase_stream(workload_a, shift_after) + phase_stream(
        workload_b, args.requests - shift_after
    )
    print(f"serving {args.requests} requests over {args.shards} shards; "
          f"workload shifts families {_DRIFT_FAMILIES_A} -> "
          f"{_DRIFT_FAMILIES_B} after {shift_after}; retraining every "
          f"{args.retrain_every} requests...")

    served_versions = set()
    post_shift_rel = []
    try:
        start = time.perf_counter()
        for offset in range(0, len(stream), args.burst):
            burst = stream[offset:offset + args.burst]
            plans = frontend.optimize_batch(burst, timeout=60.0)
            for query, plan in zip(burst, plans):
                served_versions.add(plan.policy_version)
                expert_cost = baseline.cost(query)
                if offset >= shift_after and expert_cost > 0:
                    post_shift_rel.append(plan.cost / expert_cost)
            daemon.maybe_run()
        total_s = time.perf_counter() - start
        latency = frontend.latency_summary()
        counters = frontend.counters()
        registry = frontend.metrics_registry()
        loop = daemon.as_dict()
        lineage = list(daemon.lineage)
    finally:
        daemon.stop()
        frontend.close()

    window = max(1, args.burst)
    first_window = post_shift_rel[:window]
    last_window = post_shift_rel[-window:]
    drift_report = {
        "shift_after": shift_after,
        "loop": loop,
        "lineage": lineage,
        "served_versions": sorted(served_versions),
        "post_shift_first": float(np.mean(first_window)) if first_window else 0.0,
        "post_shift_last": float(np.mean(last_window)) if last_window else 0.0,
    }
    return total_s, latency, counters, registry, drift_report


def _drift_smoke_check(drift_report):
    """CI assertions for the closed learning loop."""
    failures = []
    loop = drift_report["loop"]
    if loop["promotions"] < 1:
        failures.append(
            f"drift loop made no gated promotion in {loop['cycles']} cycles"
        )
    promoted = set(loop["promoted_versions"])
    bad_served = set(drift_report["served_versions"]) - promoted
    if bad_served:
        failures.append(
            f"rejected policy versions were served: {sorted(bad_served)}"
        )
    unpunished = [
        entry
        for entry in drift_report["lineage"]
        if entry.get("poisoned") and entry.get("action") != "rejected"
    ]
    if unpunished:
        failures.append(
            f"{len(unpunished)} poisoned retraining cycle(s) were not "
            "rejected by the gate"
        )
    return failures


def _serve_concurrent(args, db, env, agent, stream, telemetry=None):
    """Open-loop client threads submitting through the front end."""
    import threading

    executor = getattr(args, "executor", "thread")
    frontend = _make_frontend(
        db,
        agent=agent,
        featurizer=env.featurizer,
        reward_source=env.reward_source,
        n_shards=args.shards,
        max_batch=args.burst,
        max_delay_ms=args.max_delay_ms,
        expert_lane=getattr(args, "expert_lane", "bitset"),
        telemetry=telemetry,
        executor=executor,
        cache_capacity=args.cache_capacity,
        regression_threshold=args.threshold,
        max_batch_size=args.burst,
    )
    if executor == "process":
        from repro.serving.procpool import worker_blas_threads

        print(f"worker BLAS/OpenMP threads pinned to "
              f"{worker_blas_threads()} per shard process "
              f"(override with REPRO_WORKER_BLAS_THREADS)")
    chaos = getattr(args, "chaos", False)
    if chaos:
        from repro.serving import FaultConfig, FaultInjector

        rate = args.chaos_rate
        frontend.install_fault_injector(FaultInjector(FaultConfig(
            worker_fault_rate=rate,
            latency_spike_rate=rate,
            policy_nan_rate=rate,
            stats_race_rate=rate,
            # SIGKILL chaos only makes sense when shards are processes.
            worker_kill_rate=rate / 4 if executor == "process" else 0.0,
            seed=args.chaos_seed,
        )))
    futures = [None] * len(stream)
    submit_errors = []

    def client(offset: int) -> None:
        # Open loop: submit without waiting for responses; the flusher
        # decides when batches form.
        try:
            for i in range(offset, len(stream), args.concurrency):
                futures[i] = frontend.submit(stream[i])
        except Exception as exc:  # e.g. backpressure rejection
            submit_errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(k,), name=f"client-{k}")
        for k in range(args.concurrency)
    ]
    print(f"serving {args.requests} requests from {args.concurrency} "
          f"open-loop clients over {args.shards} shards "
          f"(max_batch={args.burst}, max_delay={args.max_delay_ms}ms)...")
    try:
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if submit_errors:
            raise RuntimeError(
                f"{len(submit_errors)} client thread(s) failed to submit"
            ) from submit_errors[0]
        request_failures = []
        for future in futures:
            try:
                future.result()
            except Exception as exc:
                request_failures.append(exc)
        if request_failures and not chaos:
            # Without injected faults a failed request is a bug, not a
            # statistic.
            raise request_failures[0]
        total_s = time.perf_counter() - start
        fault_report = None
        if chaos:
            # Merged schedule: parent-side draws (worker_fault, latency
            # spikes, worker_kill) plus each worker process's own draws
            # (stats_race, policy_nan) — the sites are disjoint, so the
            # merge is a plain sum.
            injected = frontend.fault_fired_counts()
            succeeded = len(futures) - len(request_failures)
            fault_report = {
                "injected": injected,
                "total_injected": sum(injected.values()),
                "succeeded": succeeded,
                "failed": len(request_failures),
                "success_rate": succeeded / max(1, len(futures)),
                "outstanding": len(frontend._outstanding),
            }
        latency = frontend.latency_summary()
        counters = frontend.counters()
        episodes = frontend.drain_experience()
        registry = frontend.metrics_registry()
        if fault_report is not None:
            fault_report["respawns"] = int(
                counters.get("frontend_worker_restarts", 0)
            )
    finally:
        frontend.close()
    return total_s, latency, counters, episodes, registry, fault_report


_COMMANDS = {
    "info": _cmd_info,
    "plan": _cmd_plan,
    "fig3a": _cmd_fig3a,
    "fig3b": _cmd_fig3b,
    "fig3c": _cmd_fig3c,
    "lfd": _cmd_lfd,
    "bootstrap": _cmd_bootstrap,
    "incremental": _cmd_incremental,
    "serve-bench": _cmd_serve_bench,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
