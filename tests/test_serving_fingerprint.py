"""Tests for canonical query fingerprints (repro.serving.fingerprint)."""

from repro.db.query import parse_query
from repro.serving import canonical_text, fingerprint


def fp(sql: str, name: str = "q") -> str:
    return fingerprint(parse_query(sql, name=name))


class TestEquivalence:
    def test_query_name_ignored(self):
        sql = "SELECT * FROM a, b WHERE a.id = b.a_id"
        assert fingerprint(parse_query(sql, "x")) == fingerprint(parse_query(sql, "y"))

    def test_alias_renaming(self):
        assert fp(
            "SELECT * FROM a AS x, b AS y WHERE x.id = y.a_id AND x.x > 3"
        ) == fp(
            "SELECT * FROM a AS u, b AS v WHERE u.id = v.a_id AND u.x > 3"
        )

    def test_conjunct_order_and_join_side_swap(self):
        assert fp(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id AND a.x = 2"
        ) == fp(
            "SELECT * FROM a, b, c WHERE a.x = 2 AND c.b_id = b.id AND b.a_id = a.id"
        )

    def test_from_order_irrelevant(self):
        assert fp("SELECT * FROM b, a WHERE a.id = b.a_id") == fp(
            "SELECT * FROM a, b WHERE a.id = b.a_id"
        )

    def test_in_list_order_irrelevant(self):
        assert fp("SELECT * FROM a WHERE a.x IN (1, 2, 3)") == fp(
            "SELECT * FROM a WHERE a.x IN (3, 1, 2)"
        )

    def test_symmetric_self_join_alias_swap(self):
        # b1/b2 are automorphic up to the selection; swapping which alias
        # carries the selection yields an equivalent query.
        assert fp(
            "SELECT * FROM a, b AS b1, b AS b2 "
            "WHERE b1.a_id = a.id AND b2.a_id = a.id AND b1.z = 3"
        ) == fp(
            "SELECT * FROM a, b AS b1, b AS b2 "
            "WHERE b2.a_id = a.id AND b1.a_id = a.id AND b2.z = 3"
        )


class TestDistinction:
    def test_different_constant(self):
        assert fp("SELECT * FROM a WHERE a.x = 1") != fp("SELECT * FROM a WHERE a.x = 2")

    def test_different_column(self):
        assert fp("SELECT * FROM a WHERE a.x = 1") != fp("SELECT * FROM a WHERE a.y = 1")

    def test_different_join_shape(self):
        assert fp("SELECT * FROM a, b WHERE a.id = b.a_id") != fp(
            "SELECT * FROM a, b WHERE a.id = b.a_id AND a.x = 1"
        )

    def test_selection_on_asymmetric_self_join_side_matters(self):
        # b1 and b2 are distinguishable here (only b1 joins c), so moving
        # the selection between them changes the query's meaning.
        base = (
            "SELECT * FROM a, b AS b1, b AS b2, c "
            "WHERE b1.a_id = a.id AND b2.a_id = a.id AND c.b_id = b1.id"
        )
        assert fp(base + " AND b1.z = 3") != fp(base + " AND b2.z = 3")

    def test_aggregates_matter(self):
        assert fp("SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id") != fp(
            "SELECT MIN(a.x) FROM a, b WHERE a.id = b.a_id"
        )

    def test_group_by_matters(self):
        assert fp("SELECT a.x, COUNT(*) FROM a GROUP BY a.x") != fp(
            "SELECT COUNT(*) FROM a"
        )


class TestCanonicalText:
    def test_deterministic(self):
        query = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id", "q"
        )
        assert canonical_text(query) == canonical_text(query)

    def test_uses_canonical_alias_names(self):
        text = canonical_text(
            parse_query("SELECT * FROM a AS zz, b AS qq WHERE zz.id = qq.a_id", "q")
        )
        assert "zz" not in text and "qq" not in text
        assert "r0" in text and "r1" in text
