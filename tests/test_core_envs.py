"""Tests for the planning environments (join-order, staged, full-plan)."""

import numpy as np
import pytest

from repro.core.envs import FullPlanEnv, JoinOrderEnv, Stage, StagedPlanEnv
from repro.core.rewards import CostModelReward, ExpertBaseline, LatencyReward
from repro.db.plans import IndexScan, SeqScan, _Aggregate, _Join
from repro.db.query import parse_query
from repro.rl.env import rollout
from repro.workloads.generator import Workload


@pytest.fixture(scope="module")
def workload(small_db):
    queries = [
        parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="chain",
        ),
        parse_query(
            "SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id AND b.z = 1 "
            "GROUP BY a.x",
            name="agg2",
        ),
        parse_query("SELECT * FROM b, c WHERE b.id = c.b_id AND c.w = 2", name="bc"),
    ]
    for q in queries:
        q.validate_against(small_db.schema)
    return Workload("env-test", queries)


def random_policy(rng):
    def act(state, mask, rng_, greedy):
        valid = np.nonzero(mask)[0]
        return int(rng.choice(valid)), 0.0

    return act


class TestJoinOrderEnv:
    def test_episode_length_is_n_minus_one(self, small_db, workload):
        env = JoinOrderEnv(small_db, workload, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        env.reset(workload["chain"])
        trajectory = rollout(env, random_policy(rng), rng)
        # rollout resets the env; use a fixed query via a fresh rollout
        env2 = JoinOrderEnv(
            small_db,
            Workload("one", [workload["chain"]]),
            rng=np.random.default_rng(0),
        )
        t = rollout(env2, random_policy(rng), rng)
        assert len(t) == workload["chain"].n_relations - 1

    def test_terminal_reward_only(self, small_db, workload):
        env = JoinOrderEnv(
            small_db,
            Workload("one", [workload["chain"]]),
            rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(2)
        t = rollout(env, random_policy(rng), rng)
        rewards = [tr.reward for tr in t.transitions]
        assert all(r == 0.0 for r in rewards[:-1])
        assert rewards[-1] != 0.0

    def test_info_carries_plan_and_outcome(self, small_db, workload):
        env = JoinOrderEnv(
            small_db,
            Workload("one", [workload["chain"]]),
            rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(3)
        t = rollout(env, random_policy(rng), rng)
        assert "plan" in t.info and "outcome" in t.info and "tree" in t.info
        assert t.info["tree"].aliases == frozenset(["a", "b", "c"])

    def test_masks_forbid_cross_products(self, small_db, workload):
        env = JoinOrderEnv(
            small_db,
            Workload("one", [workload["chain"]]),
            rng=np.random.default_rng(0),
            forbid_cross_products=True,
        )
        state, mask = env.reset()
        # slots 0=a, 1=b, 2=c; (a, c) is not joined
        idx = env.featurizer.pair_index[(0, 2)]
        assert not mask[idx]

    def test_reward_uses_cost_model_by_default(self, small_db, workload):
        env = JoinOrderEnv(
            small_db,
            Workload("one", [workload["chain"]]),
            rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(4)
        t = rollout(env, random_policy(rng), rng)
        outcome = t.info["outcome"]
        assert outcome.cost is not None
        assert not outcome.executed

    def test_expert_actions_replayable(self, small_db, workload):
        env = JoinOrderEnv(
            small_db, workload, rng=np.random.default_rng(0)
        )
        query = workload["chain"]
        actions = env.expert_actions(query)
        state, mask = env.reset(query)
        done = False
        for action in actions:
            assert mask[action], "expert action must be valid"
            result = env.step(action)
            state, mask = result.state, result.mask
            done = result.done
        assert done

    def test_step_before_reset_raises(self, small_db, workload):
        env = JoinOrderEnv(small_db, workload)
        with pytest.raises(RuntimeError):
            env.step(0)


class TestStagedPlanEnv:
    def test_join_order_stage_matches_join_env_layout(self, small_db, workload):
        env = StagedPlanEnv(small_db, workload, stages=Stage.JOIN_ORDER)
        assert env.n_actions == env.featurizer.n_pair_actions

    def test_requires_join_order(self, small_db, workload):
        with pytest.raises(ValueError):
            StagedPlanEnv(small_db, workload, stages=Stage.ACCESS_PATH)

    def test_action_count_for_prefixes(self, small_db, workload):
        env = FullPlanEnv(small_db, workload)
        p = env.featurizer.n_pair_actions
        assert env.action_count_for(Stage.JOIN_ORDER) == p
        assert env.action_count_for(Stage.JOIN_ORDER | Stage.ACCESS_PATH) == p + 2
        assert env.action_count_for(Stage.all()) == p + 7
        assert env.n_actions == p + 7

    def test_full_episode_structure(self, small_db, workload):
        """access choices, then (pair, op) pairs, then aggregate."""
        env = FullPlanEnv(
            small_db,
            Workload("one", [workload["agg2"]]),
            rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(5)
        t = rollout(env, random_policy(rng), rng)
        n = workload["agg2"].n_relations
        # n access + (n-1) pairs + (n-1) ops + 1 aggregate
        assert len(t) == n + 2 * (n - 1) + 1

    def test_no_aggregate_decision_without_aggregates(self, small_db, workload):
        env = FullPlanEnv(
            small_db,
            Workload("one", [workload["chain"]]),  # no aggregates
            rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(6)
        t = rollout(env, random_policy(rng), rng)
        n = workload["chain"].n_relations
        assert len(t) == n + 2 * (n - 1)

    def test_learned_choices_land_in_plan(self, small_db, workload):
        """Forcing NL + seq scans through the env must yield that plan."""
        query = workload["bc"]
        env = FullPlanEnv(
            small_db, Workload("one", [query]), rng=np.random.default_rng(0)
        )
        state, mask = env.reset(query)
        plan = None
        while True:
            # always pick: seq scan (access), first valid pair, NL operator
            if mask[env._access_base] and env._phase == 0:
                action = env._access_base
            elif env._phase == 2:
                action = env._join_op_base + 2  # nested loop
            else:
                action = int(np.nonzero(mask)[0][0])
            result = env.step(action)
            state, mask = result.state, result.mask
            if result.done:
                plan = result.info["plan"]
                break
        from repro.db.plans import NestedLoopJoin

        joins = [n for n in plan.iter_nodes() if isinstance(n, _Join)]
        scans = [n for n in plan.iter_nodes() if isinstance(n, (SeqScan, IndexScan))]
        assert all(isinstance(j, NestedLoopJoin) for j in joins)
        assert all(isinstance(s, SeqScan) for s in scans)

    def test_invalid_action_rejected(self, small_db, workload):
        env = FullPlanEnv(
            small_db, Workload("one", [workload["chain"]]), rng=np.random.default_rng(0)
        )
        state, mask = env.reset()
        invalid = int(np.nonzero(~mask)[0][0])
        with pytest.raises(ValueError):
            env.step(invalid)

    def test_expert_actions_replay_to_expert_cost(self, small_db, workload):
        query = workload["agg2"]
        env = FullPlanEnv(
            small_db, Workload("one", [query]), rng=np.random.default_rng(0)
        )
        actions = env.expert_actions(query)
        state, mask = env.reset(query)
        for action in actions:
            assert mask[action], f"invalid expert action {action}"
            result = env.step(action)
            state, mask = result.state, result.mask
        assert result.done
        expert_cost = env.planner.optimize(query).cost.total
        replayed_cost = result.info["outcome"].cost
        assert replayed_cost == pytest.approx(expert_cost, rel=0.25)

    def test_latency_reward_integration(self, small_db, workload):
        env = FullPlanEnv(
            small_db,
            Workload("one", [workload["bc"]]),
            reward_source=LatencyReward(small_db),
            rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(7)
        t = rollout(env, random_policy(rng), rng)
        assert t.info["outcome"].executed
        assert t.info["outcome"].latency_ms is not None

    def test_aggregate_plan_root_matches_choice(self, small_db, workload):
        query = workload["agg2"]
        env = FullPlanEnv(
            small_db, Workload("one", [query]), rng=np.random.default_rng(0)
        )
        state, mask = env.reset(query)
        while True:
            valid = np.nonzero(mask)[0]
            # pick sort aggregate when offered
            action = (
                env._agg_base + 1
                if mask[env._agg_base + 1] and env._phase == 3
                else int(valid[0])
            )
            result = env.step(action)
            state, mask = result.state, result.mask
            if result.done:
                break
        from repro.db.plans import SortAggregate

        assert isinstance(result.info["plan"], SortAggregate)
