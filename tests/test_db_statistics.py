"""Tests for repro.db.statistics, with hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.schema import NULL_INT, Column, TableSchema
from repro.db.statistics import ColumnStats, analyze_table
from repro.db.table import Table


def stats_for(values, rng=None, **kw):
    rng = rng or np.random.default_rng(0)
    schema = TableSchema("t", (Column("v"),))
    arr = np.asarray(values, dtype=np.int64)
    table = Table(schema, {"v": arr})
    return analyze_table(table, rng, **kw).column("v")


class TestAnalyze:
    def test_basic_fields(self):
        s = stats_for([1, 2, 2, 3, 3, 3])
        assert s.n_rows == 6
        assert s.min_value == 1 and s.max_value == 3
        assert s.null_frac == 0.0
        assert s.n_distinct == pytest.approx(3.0)

    def test_null_fraction(self):
        s = stats_for([1, 2, NULL_INT, NULL_INT])
        assert s.null_frac == pytest.approx(0.5)

    def test_all_null(self):
        s = stats_for([NULL_INT, NULL_INT])
        assert s.null_frac == 1.0
        assert s.n_distinct == 0.0
        assert s.selectivity_eq(5) == 0.0

    def test_mcvs_capture_heavy_hitters(self):
        values = [7] * 900 + list(range(100))
        s = stats_for(values)
        assert 7 in s.mcv_values
        idx = list(s.mcv_values).index(7)
        assert s.mcv_freqs[idx] == pytest.approx(0.9, abs=0.02)

    def test_sampling_keeps_distinct_below_rows(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 50_000, size=100_000)
        s = stats_for(values, rng, sample_size=5000)
        assert s.n_distinct <= 100_000

    def test_empty_table(self):
        s = stats_for([])
        assert s.n_rows == 0
        assert s.selectivity_eq(1) == 0.0


class TestSelectivityEq:
    def test_mcv_exact(self):
        values = [1] * 50 + [2] * 30 + [3] * 20
        s = stats_for(values)
        assert s.selectivity_eq(1) == pytest.approx(0.5, abs=0.01)

    def test_unseen_value_small(self):
        values = list(range(100)) * 10
        s = stats_for(values, n_mcvs=5)
        assert 0 < s.selectivity_eq(999_999) <= 0.05

    @given(st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_eq_close_to_truth_uniform(self, probe):
        rng = np.random.default_rng(42)
        values = rng.integers(0, 20, size=2000)
        s = stats_for(values, rng)
        truth = float((values == probe).mean())
        assert abs(s.selectivity_eq(probe) - truth) < 0.05


class TestSelectivityRange:
    def test_full_range_near_one(self):
        values = list(range(1000))
        s = stats_for(values)
        assert s.selectivity_range(None, None) == pytest.approx(1.0, abs=0.02)

    def test_half_range(self):
        values = list(range(1000))
        s = stats_for(values)
        assert s.selectivity_range(None, 500) == pytest.approx(0.5, abs=0.06)

    def test_empty_range(self):
        values = list(range(1000))
        s = stats_for(values)
        assert s.selectivity_range(2000, 3000) == pytest.approx(0.0, abs=0.01)

    def test_reversed_range_zero(self):
        values = list(range(1000))
        s = stats_for(values)
        assert s.selectivity_range(700, 300) == pytest.approx(0.0, abs=0.01)

    @given(
        st.integers(0, 1000),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_close_to_truth(self, a, b):
        lo, hi = min(a, b), max(a, b)
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1000, size=5000)
        s = stats_for(values, rng)
        truth = float(((values >= lo) & (values <= hi)).mean())
        assert abs(s.selectivity_range(lo, hi) - truth) < 0.08

    @given(st.integers(-100, 1100))
    @settings(max_examples=40, deadline=None)
    def test_selectivities_bounded(self, probe):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 1000, size=3000)
        s = stats_for(values, rng)
        for sel in (
            s.selectivity_eq(probe),
            s.selectivity_range(probe, None),
            s.selectivity_range(None, probe),
            s.selectivity_ne(probe),
            s.selectivity_in([probe, probe + 1]),
        ):
            assert 0.0 <= sel <= 1.0

    def test_complementary_ranges_sum_to_one(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1000, size=5000)
        s = stats_for(values, rng)
        below = s.selectivity_range(None, 400)
        above = s.selectivity_range(400, None)
        # slight double-count at the boundary value is acceptable
        assert 0.95 < below + above < 1.1


class TestHistogramInvariants:
    @given(st.lists(st.integers(-10_000, 10_000), min_size=5, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_bounds_sorted_and_within_minmax(self, values):
        s = stats_for(values)
        if len(s.histogram_bounds) >= 2:
            assert (np.diff(s.histogram_bounds) >= 0).all()
            assert s.histogram_bounds[0] >= s.min_value
            assert s.histogram_bounds[-1] <= s.max_value

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_mcv_freqs_valid(self, values):
        s = stats_for(values)
        assert (s.mcv_freqs >= 0).all()
        assert s.mcv_freqs.sum() <= 1.0 + 1e-9
        assert s.hist_frac >= -1e-9
        assert s.mcv_freqs.sum() + s.hist_frac + s.null_frac <= 1.0 + 1e-6
