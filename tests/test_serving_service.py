"""Tests for the serving subsystem: micro-batching, guardrail routing,
experience round-trip, and the OptimizerService front end."""

import numpy as np
import pytest

from repro.core import ExpertBaseline, Trainer, TrainingConfig
from repro.core.featurize import QueryFeaturizer
from repro.db.query import parse_query
from repro.optimizer.planner import Planner
from repro.rl.ppo import PPOAgent
from repro.serving import MicroBatchEngine, OptimizerService, ServingConfig

CHAIN = "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id"
CHAIN_RENAMED = "SELECT * FROM a AS u, b AS v, c AS w2 WHERE w2.b_id = v.id AND v.a_id = u.id"
BC = "SELECT * FROM b, c WHERE b.id = c.b_id"
AB = "SELECT * FROM a, b WHERE a.id = b.a_id"
OVERSIZE = (
    "SELECT * FROM a, b AS b1, b AS b2, c "
    "WHERE b1.a_id = a.id AND b2.a_id = a.id AND c.b_id = b1.id"
)


@pytest.fixture(scope="module")
def featurizer(small_db):
    return QueryFeaturizer(small_db.schema, max_relations=3)


@pytest.fixture(scope="module")
def agent(small_db, featurizer):
    return PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(3)
    )


def make_service(small_db, agent, featurizer, **config_kwargs):
    return OptimizerService(
        small_db,
        agent,
        planner=Planner(small_db),
        featurizer=featurizer,
        config=ServingConfig(**config_kwargs),
    )


class TestBatchedInference:
    def test_batched_rollout_matches_sequential(self, small_db, agent, featurizer):
        queries = [
            parse_query(CHAIN, "chain"),
            parse_query(BC, "bc"),
            parse_query(AB, "ab"),
        ]
        engine = MicroBatchEngine(agent.policy, featurizer, small_db)
        batched = engine.rollout(queries)
        for query, record in zip(queries, batched):
            solo = engine.rollout([query])[0]
            assert record.tree.render() == solo.tree.render()
            assert [t.action for t in record.transitions] == [
                t.action for t in solo.transitions
            ]

    def test_mixed_relation_counts_retire_independently(
        self, small_db, agent, featurizer
    ):
        queries = [parse_query(CHAIN, "chain"), parse_query(BC, "bc")]
        engine = MicroBatchEngine(agent.policy, featurizer, small_db)
        records = engine.rollout(queries)
        assert len(records[0].transitions) == 2  # 3 relations -> 2 joins
        assert len(records[1].transitions) == 1
        # Lockstep: round 1 scores both queries, round 2 only the chain.
        assert engine.states_scored == 3

    def test_chunking_respects_max_batch_size(self, small_db, agent, featurizer):
        queries = [parse_query(BC, f"bc{i}") for i in range(5)]
        engine = MicroBatchEngine(agent.policy, featurizer, small_db, max_batch_size=2)
        engine.rollout(queries)
        assert engine.forward_passes == 3  # ceil(5 / 2)

    def test_sampling_rollout_never_picks_masked_action(
        self, small_db, agent, featurizer
    ):
        # With only a handful of valid pairs per state, many sampled
        # rollouts would crash on SlotState.join if a masked
        # (zero-probability) action ever slipped through act_batch.
        queries = [parse_query(CHAIN, f"chain{i}") for i in range(4)]
        engine = MicroBatchEngine(agent.policy, featurizer, small_db)
        rng = np.random.default_rng(11)
        for _ in range(25):
            records = engine.rollout(queries, greedy=False, rng=rng)
            for record in records:
                assert record.tree.n_leaves == 3


class TestCacheBehaviour:
    def test_second_request_hits_cache(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        first = service.optimize(parse_query(CHAIN, "chain"))
        second = service.optimize(parse_query(CHAIN, "chain"))
        assert first.source in ("policy", "fallback")
        assert second.source == "cache"
        assert second.cost == first.cost
        assert service.counters()["cache_hits"] == 1

    def test_equivalent_query_shares_entry(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        first = service.optimize(parse_query(CHAIN, "chain"))
        renamed = service.optimize(parse_query(CHAIN_RENAMED, "other-name"))
        assert renamed.source == "cache"
        assert renamed.fingerprint == first.fingerprint

    def test_renamed_hit_served_in_requester_aliases(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        original = parse_query(CHAIN, "chain")
        requester = parse_query(CHAIN_RENAMED, "renamed")
        service.optimize(original)
        served = service.optimize(requester)
        assert served.source == "cache"
        # The plan must speak the requester's aliases, not the origin's...
        assert served.plan.aliases == frozenset(requester.relations)
        # ...and be directly usable against the requester's query.
        assert small_db.plan_cost(served.plan, requester).total == pytest.approx(
            served.cost
        )
        result = small_db.execute_plan(served.plan, requester)
        assert result.rows >= 0

    def test_renamed_duplicates_within_one_burst(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        original = parse_query(CHAIN, "chain")
        requester = parse_query(CHAIN_RENAMED, "renamed")
        first, second = service.optimize_batch([original, requester])
        assert first.fingerprint == second.fingerprint
        assert second.plan.aliases == frozenset(requester.relations)
        assert small_db.plan_cost(second.plan, requester).total > 0

    def test_duplicates_within_burst_computed_once(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        q = parse_query(CHAIN, "chain")
        served = service.optimize_batch([q, q, q])
        assert len({r.source for r in served}) == 1  # one shared answer
        assert service.stats.requests == 3
        assert service.engine.states_scored == 2  # single rollout of one query

    def test_refresh_statistics_invalidates(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        service.optimize(parse_query(CHAIN, "chain"))
        assert len(service.cache) == 1
        service.refresh_statistics(sample_size=500)
        assert len(service.cache) == 0
        assert service.cache.stats.invalidations == 1
        again = service.optimize(parse_query(CHAIN, "chain"))
        assert again.source != "cache"

    def test_partial_refresh_evicts_only_affected_tables(
        self, small_db, agent, featurizer
    ):
        service = make_service(small_db, agent, featurizer)
        service.optimize(parse_query(CHAIN, "chain"))  # touches a, b, c
        service.optimize(parse_query(BC, "bc"))  # touches b, c
        ab_plan = service.optimize(parse_query(AB, "ab"))  # touches a, b
        assert len(service.cache) == 3
        # Re-ANALYZE only "c": the a-b plan must keep serving from cache.
        service.refresh_statistics(sample_size=500, tables=["c"])
        assert len(service.cache) == 1
        assert service.cache.stats.invalidations_partial == 2
        again = service.optimize(parse_query(AB, "ab2"))
        assert again.source == "cache"
        assert again.cost == ab_plan.cost
        assert service.optimize(parse_query(BC, "bc2")).source != "cache"

    def test_partial_refresh_keeps_unaffected_memo_fragments(
        self, small_db, agent, featurizer
    ):
        from repro.optimizer.memo import SubPlanCostMemo
        from repro.serving import OptimizerService, ServingConfig

        service = OptimizerService(
            small_db,
            agent,
            planner=Planner(small_db, cost_memo=SubPlanCostMemo()),
            featurizer=featurizer,
            config=ServingConfig(),
        )
        memo = service.planner.cost_memo
        service.optimize(parse_query(AB, "ab"))
        service.optimize(parse_query(BC, "bc"))
        assert len(memo) > 0
        with_a = [
            key for key in memo._entries
            if memo._entries[key].tables and "a" in memo._entries[key].tables
        ]
        service.refresh_statistics(sample_size=500, tables=["a"])
        remaining = set(memo._entries)
        assert not (remaining & set(with_a))
        # Fragments reading only b/c survived the a-only refresh.
        assert remaining
        # And the planner does not wipe them on next use: the epoch sync
        # sees per-table epochs and drops nothing further.
        service.optimize(parse_query(BC, "bc3"))
        assert remaining <= set(memo._entries)


class TestGuardrail:
    def test_impossible_threshold_always_falls_back(self, small_db, agent, featurizer):
        # No plan beats the expert by 1e6x, so a deliberately bad (well,
        # any) policy must be routed to the expert plan.
        service = make_service(
            small_db, agent, featurizer, regression_threshold=1e-6
        )
        served = service.optimize(parse_query(CHAIN, "chain"))
        assert served.source == "fallback"
        assert served.decision is not None
        assert not served.decision.use_learned
        assert served.cost == served.decision.expert_cost
        assert service.counters()["fallback_rate"] == 1.0

    def test_disabled_guardrail_serves_policy_plan(self, small_db, agent, featurizer):
        service = make_service(
            small_db, agent, featurizer, regression_threshold=None
        )
        served = service.optimize(parse_query(CHAIN, "chain"))
        assert served.source == "policy"
        assert served.decision.expert_cost is None
        assert service.router.fallbacks == 0

    def test_generous_threshold_accepts_learned_plan(self, small_db, agent, featurizer):
        service = make_service(
            small_db, agent, featurizer, regression_threshold=1e9
        )
        served = service.optimize(parse_query(CHAIN, "chain"))
        assert served.source == "policy"
        assert served.decision.use_learned
        assert served.decision.predicted_regression is not None

    def test_oversize_query_served_by_expert(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        served = service.optimize(parse_query(OVERSIZE, "wide"))
        assert served.source == "expert"
        # And it is cached like any other answer.
        assert service.optimize(parse_query(OVERSIZE, "wide")).source == "cache"


class TestExperienceRoundTrip:
    def test_served_rollouts_retrain_the_policy(self, small_db, featurizer):
        rng = np.random.default_rng(5)
        agent = PPOAgent(featurizer.state_dim, featurizer.n_pair_actions, rng)
        service = make_service(
            small_db, agent, featurizer, regression_threshold=None
        )
        for name, sql in [("chain", CHAIN), ("bc", BC), ("ab", AB)]:
            service.optimize(parse_query(sql, name))
        assert len(service.experience) == 3
        trajectories = service.experience.drain()
        assert len(service.experience) == 0
        for trajectory in trajectories:
            assert trajectory.info["outcome"].cost is not None
            assert trajectory.transitions[-1].reward != 0.0

        trainer = Trainer(
            None, agent, ExpertBaseline(small_db), rng, TrainingConfig(batch_size=2)
        )
        weights_before = agent.policy_net.output_layer.weight.copy()
        log = trainer.replay(trajectories)
        assert len(log) == 3
        assert all(r.cost is not None and r.expert_cost for r in log.records)
        assert not np.array_equal(
            weights_before, agent.policy_net.output_layer.weight
        )

    def test_replay_without_update_only_records(self, small_db, featurizer):
        rng = np.random.default_rng(6)
        agent = PPOAgent(featurizer.state_dim, featurizer.n_pair_actions, rng)
        service = make_service(
            small_db, agent, featurizer, regression_threshold=None
        )
        service.optimize(parse_query(CHAIN, "chain"))
        trainer = Trainer(None, agent, ExpertBaseline(small_db), rng)
        weights_before = agent.policy_net.output_layer.weight.copy()
        log = trainer.replay(service.experience.drain(), update=False)
        assert len(log) == 1
        assert np.array_equal(weights_before, agent.policy_net.output_layer.weight)

    def test_collection_disabled(self, small_db, agent, featurizer):
        service = make_service(
            small_db, agent, featurizer, collect_experience=False
        )
        service.optimize(parse_query(CHAIN, "chain"))
        assert service.experience is None
        assert "experience_size" not in service.counters()


class TestServiceFrontEnd:
    def test_submit_flush_micro_batches(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        service.submit(parse_query(CHAIN, "chain"))
        service.submit(parse_query(BC, "bc"))
        served = service.flush()
        assert len(served) == 2
        assert service.stats.batches == 1
        assert service.flush() == []

    def test_flush_returns_plans_in_submit_order(
        self, small_db, agent, featurizer
    ):
        service = make_service(small_db, agent, featurizer)
        names = ["chain", "bc", "ab", "bc2"]
        slots = [
            service.submit(parse_query(sql, name))
            for sql, name in zip((CHAIN, BC, AB, BC), names)
        ]
        assert slots == [0, 1, 2, 3]
        served = service.flush()
        assert [s.query_name for s in served] == names

    def test_duplicate_submission_raises(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        query = parse_query(BC, "bc")
        service.submit(query)
        with pytest.raises(ValueError, match="already submitted"):
            service.submit(query)
        # A distinct object for the same SQL is a new request, not a dup.
        service.submit(parse_query(BC, "bc"))
        assert len(service.flush()) == 2

    def test_submit_after_close_raises(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        service.submit(parse_query(BC, "bc"))
        served = service.close()  # final flush serves what was queued
        assert [s.query_name for s in served] == ["bc"]
        with pytest.raises(RuntimeError, match="close"):
            service.submit(parse_query(AB, "ab"))
        assert service.close() == []  # idempotent

    def test_pending_queue_is_bounded(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer, max_pending=2)
        service.submit(parse_query(BC, "bc0"))
        service.submit(parse_query(BC, "bc1"))
        with pytest.raises(RuntimeError, match="full"):
            service.submit(parse_query(BC, "bc2"))
        service.flush()
        service.submit(parse_query(BC, "bc3"))  # room again after flush

    def test_single_relation_query(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        served = service.optimize(parse_query("SELECT * FROM a WHERE a.x > 3", "s"))
        assert served.cost > 0
        # No joins means no transitions: nothing to learn from.
        assert len(service.experience) == 0

    def test_latency_summary_populated(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        service.optimize(parse_query(CHAIN, "chain"))
        summary = service.latency_summary()
        assert summary["p95_ms"] >= summary["p50_ms"] > 0.0

    def test_counters_expose_operator_view(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        service.optimize(parse_query(CHAIN, "chain"))
        counters = service.counters()
        for key in ("requests", "cache_hit_rate", "fallback_rate",
                    "served_from_policy", "forward_passes"):
            assert key in counters
