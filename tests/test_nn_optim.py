"""Tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, RMSProp, clip_gradients


def quadratic_params():
    return {"x": np.array([5.0, -3.0])}


def quadratic_grads(params):
    return {"x": 2.0 * params["x"]}


class TestClipGradients:
    def test_under_limit_untouched(self):
        grads = {"a": np.array([3.0, 4.0])}  # norm 5
        norm = clip_gradients(grads, 10.0)
        assert norm == pytest.approx(5.0)
        assert np.allclose(grads["a"], [3.0, 4.0])

    def test_over_limit_scaled(self):
        grads = {"a": np.array([3.0, 4.0])}
        clip_gradients(grads, 1.0)
        assert np.isclose(np.linalg.norm(grads["a"]), 1.0)

    def test_multi_tensor_global_norm(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        clip_gradients(grads, 2.5)
        total = np.sqrt(sum(float((g**2).sum()) for g in grads.values()))
        assert np.isclose(total, 2.5)

    def test_bad_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients({"a": np.ones(2)}, 0.0)


@pytest.mark.parametrize(
    "factory",
    [
        lambda p: SGD(p, lr=0.1),
        lambda p: SGD(p, lr=0.1, momentum=0.9),
        lambda p: RMSProp(p, lr=0.05),
        lambda p: Adam(p, lr=0.2),
    ],
    ids=["sgd", "sgd-momentum", "rmsprop", "adam"],
)
def test_optimizers_minimize_quadratic(factory):
    params = quadratic_params()
    opt = factory(params)
    for _ in range(200):
        opt.step(quadratic_grads(params))
    assert np.linalg.norm(params["x"]) < 1e-2


class TestOptimizerInterface:
    def test_updates_in_place(self):
        params = {"x": np.array([1.0])}
        view = params["x"]
        opt = SGD(params, lr=0.5)
        opt.step({"x": np.array([1.0])})
        assert view[0] == pytest.approx(0.5)

    def test_missing_grad_raises(self):
        opt = Adam({"x": np.ones(2), "y": np.ones(2)})
        with pytest.raises(KeyError):
            opt.step({"x": np.ones(2)})

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            SGD({"x": np.ones(1)}, lr=0.0)

    def test_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD({"x": np.ones(1)}, lr=0.1, momentum=1.0)

    def test_rebind_resets_mismatched_state(self):
        params = {"x": np.ones(2)}
        opt = Adam(params, lr=0.1)
        opt.step({"x": np.ones(2)})
        grown = {"x": np.ones(4)}
        opt.rebind(grown)
        opt.step({"x": np.ones(4)})  # must not raise on shape change
        assert grown["x"].shape == (4,)

    def test_adam_bias_correction_first_step(self):
        params = {"x": np.array([0.0])}
        opt = Adam(params, lr=0.1)
        opt.step({"x": np.array([1.0])})
        # with bias correction, first step magnitude is ~lr regardless of betas
        assert params["x"][0] == pytest.approx(-0.1, rel=1e-3)
