"""Tests for repro.workloads: imdb schema, JOB-lite templates, generator."""

import numpy as np
import pytest

from repro.optimizer.planner import Planner
from repro.workloads.generator import RandomQueryGenerator, Workload
from repro.workloads.imdb import imdb_foreign_keys, imdb_specs, make_imdb_database
from repro.workloads.job import (
    FAMILIES,
    FIGURE_3B_QUERIES,
    job_lite_queries,
    job_lite_query,
    job_lite_workload,
)


@pytest.fixture(scope="module")
def tiny_imdb():
    """A very small JOB-lite instance for fast workload tests."""
    return make_imdb_database(scale=0.02, seed=5, sample_size=5000)


class TestImdbSchema:
    def test_seventeen_tables(self):
        assert len(imdb_specs()) == 17

    def test_scale_controls_rows(self):
        small = {s.name: s.n_rows for s in imdb_specs(0.1)}
        large = {s.name: s.n_rows for s in imdb_specs(1.0)}
        assert small["title"] < large["title"]
        # dimension tables are fixed-size
        assert small["kind_type"] == large["kind_type"] == 7

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            imdb_specs(0)

    def test_fk_graph_connected(self):
        import networkx as nx

        from repro.db.schema import DatabaseSchema

        specs = imdb_specs(0.02)
        schema = DatabaseSchema(
            tables={s.name: s.to_schema() for s in specs},
            foreign_keys=imdb_foreign_keys(),
        )
        assert nx.is_connected(schema.join_graph())

    def test_database_builds_and_indexes(self, tiny_imdb):
        assert tiny_imdb.n_tables == 17
        assert tiny_imdb.index_on("title", "id") is not None
        assert tiny_imdb.index_on("cast_info", "movie_id") is not None
        assert tiny_imdb.stats["title"].n_rows == tiny_imdb.tables["title"].n_rows

    def test_fk_consistency(self, tiny_imdb):
        from repro.db.schema import NULL_INT

        for fk in imdb_foreign_keys():
            child = tiny_imdb.tables[fk.src_table].column(fk.src_column)
            parent = set(tiny_imdb.tables[fk.dst_table].column(fk.dst_column))
            child_values = set(child[child != NULL_INT])
            assert child_values <= parent, fk.render()

    def test_skew_present(self, tiny_imdb):
        movie_ids = tiny_imdb.tables["cast_info"].column("movie_id")
        _, counts = np.unique(movie_ids, return_counts=True)
        assert counts.max() > 3 * np.median(counts)


class TestJobLite:
    def test_88_queries(self):
        queries = job_lite_queries()
        assert len(queries) == len(FAMILIES) * 4

    def test_figure_3b_queries_exist(self):
        queries = job_lite_queries()
        for name in FIGURE_3B_QUERIES:
            assert name in queries

    def test_all_queries_connected_and_valid(self, tiny_imdb):
        for query in job_lite_queries().values():
            query.validate_against(tiny_imdb.schema)
            assert query.is_connected(), query.name

    def test_relation_count_spread(self):
        counts = {q.n_relations for q in job_lite_queries().values()}
        assert min(counts) <= 4
        assert max(counts) >= 11

    def test_deterministic(self):
        q1 = job_lite_query("13c")
        q2 = job_lite_query("13c")
        assert q1.sql() == q2.sql()

    def test_variants_differ(self):
        sqls = {job_lite_query(f"5{v}").sql() for v in "abcd"}
        assert len(sqls) >= 2

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            job_lite_query("99a")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            job_lite_query("1z")

    def test_self_join_families_use_distinct_aliases(self):
        q = job_lite_query("12a")
        tables = list(q.relations.values())
        assert tables.count("info_type") == 2

    def test_queries_optimizable_and_executable(self, tiny_imdb):
        planner = Planner(tiny_imdb)
        for name in ("1a", "3b", "8c"):
            query = job_lite_query(name)
            result = planner.optimize(query)
            executed = tiny_imdb.execute_plan(result.plan, query, budget_ms=1e7)
            assert not executed.timed_out, name

    def test_workload_container(self):
        wl = job_lite_workload(variants=("a",))
        assert len(wl) == len(FAMILIES)
        assert "1a" in wl
        assert wl["1a"].name == "1a"

    def test_every_query_has_expert_plan(self, tiny_imdb):
        """All 88 JOB-lite queries must optimize without error."""
        planner = Planner(tiny_imdb, geqo_threshold=8)
        for name, query in job_lite_queries().items():
            result = planner.optimize(query)
            assert result.cost.total > 0, name
            assert result.join_tree.aliases == frozenset(query.relations), name

    def test_figure_3b_queries_execute(self, tiny_imdb):
        """The ten Figure 3b queries run to completion under budget."""
        planner = Planner(tiny_imdb, geqo_threshold=8)
        for name in FIGURE_3B_QUERIES:
            query = job_lite_query(name)
            plan = planner.optimize(query).plan
            result = tiny_imdb.execute_plan(plan, query, budget_ms=1e8)
            assert not result.timed_out, name


class TestWorkloadContainer:
    def make(self, n=10):
        queries = [job_lite_query(f"{f}a") for f in range(1, n + 1)]
        return Workload("test", queries)

    def test_duplicate_names_rejected(self):
        q = job_lite_query("1a")
        with pytest.raises(ValueError):
            Workload("dup", [q, q])

    def test_split(self):
        wl = self.make()
        rng = np.random.default_rng(0)
        train, evals = wl.split(0.3, rng)
        assert len(train) + len(evals) == len(wl)
        assert len(evals) == 3
        assert not set(q.name for q in train) & set(q.name for q in evals)

    def test_split_bad_fraction(self):
        with pytest.raises(ValueError):
            self.make().split(1.5, np.random.default_rng(0))

    def test_sample_deterministic(self):
        wl = self.make()
        a = wl.sample(np.random.default_rng(1)).name
        b = wl.sample(np.random.default_rng(1)).name
        assert a == b

    def test_filter(self):
        wl = self.make()
        small = wl.filter(lambda q: q.n_relations <= 5)
        assert all(q.n_relations <= 5 for q in small)

    def test_relation_counts(self):
        counts = self.make().relation_counts()
        assert counts == sorted(set(counts))


class TestRandomQueryGenerator:
    def test_exact_relation_count(self, tiny_imdb):
        gen = RandomQueryGenerator(tiny_imdb)
        rng = np.random.default_rng(0)
        for n in (1, 2, 5, 10, 17):
            q = gen.generate(rng, n)
            assert q.n_relations == n

    def test_generated_queries_connected(self, tiny_imdb):
        gen = RandomQueryGenerator(tiny_imdb)
        rng = np.random.default_rng(1)
        for _ in range(20):
            q = gen.generate(rng, int(rng.integers(2, 9)))
            assert q.is_connected()
            q.validate_against(tiny_imdb.schema)

    def test_single_relation_queries(self, tiny_imdb):
        """§5.3.2: low-relation-count queries must be synthesizable."""
        gen = RandomQueryGenerator(tiny_imdb)
        rng = np.random.default_rng(2)
        q = gen.generate(rng, 1)
        assert q.n_relations == 1
        assert not q.joins

    def test_generated_queries_optimizable(self, tiny_imdb):
        gen = RandomQueryGenerator(tiny_imdb)
        rng = np.random.default_rng(3)
        planner = Planner(tiny_imdb)
        for _ in range(5):
            q = gen.generate(rng, int(rng.integers(2, 7)))
            result = planner.optimize(q)
            assert result.cost.total > 0

    def test_workload_generation(self, tiny_imdb):
        gen = RandomQueryGenerator(tiny_imdb)
        rng = np.random.default_rng(4)
        wl = gen.workload(rng, size=15, relation_range=(2, 6))
        assert len(wl) == 15
        assert all(2 <= q.n_relations <= 6 for q in wl)

    def test_self_joins_get_fresh_aliases(self, tiny_imdb):
        gen = RandomQueryGenerator(tiny_imdb)
        rng = np.random.default_rng(5)
        for _ in range(10):
            q = gen.generate(rng, 12)
            assert len(q.relations) == 12  # aliases unique by construction

    def test_bad_relation_count(self, tiny_imdb):
        gen = RandomQueryGenerator(tiny_imdb)
        with pytest.raises(ValueError):
            gen.generate(np.random.default_rng(0), 0)

    def test_bad_relation_range(self, tiny_imdb):
        gen = RandomQueryGenerator(tiny_imdb)
        with pytest.raises(ValueError):
            gen.workload(np.random.default_rng(0), 5, relation_range=(5, 2))
