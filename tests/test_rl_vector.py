"""Lockstep vectorized collection: parity with the sequential path.

The vector engine is a throughput device, not a semantics change: with
a fixed seed, greedy collection must produce the same plans, the same
terminal rewards, and the same per-episode records the sequential path
produces. Sampling mode shares the same masking guarantees.
"""

import numpy as np
import pytest

from repro.core import (
    ExpertBaseline,
    JoinOrderEnv,
    Trainer,
    TrainingConfig,
    make_agent,
)
from repro.core.envs import Stage, StagedPlanEnv
from repro.core.rewards import CostModelReward
from repro.rl.vector_env import VectorRolloutEngine
from repro.workloads.generator import RandomQueryGenerator


@pytest.fixture()
def gen(small_db):
    return RandomQueryGenerator(small_db)


@pytest.fixture()
def workload(small_db, gen):
    return gen.workload(
        np.random.default_rng(5), size=6, relation_range=(2, 5), name="vec"
    )


def make_trainer(small_db, workload, vectorized, batch_size=4, seed=9):
    rng = np.random.default_rng(seed)
    baseline = ExpertBaseline(small_db)
    env = JoinOrderEnv(
        small_db,
        workload,
        reward_source=CostModelReward(small_db, "relative", baseline),
        rng=rng,
        forbid_cross_products=False,
    )
    agent = make_agent(env, rng, "reinforce")
    trainer = Trainer(
        env, agent, baseline, rng,
        TrainingConfig(batch_size=batch_size, vectorized=vectorized),
    )
    return env, agent, trainer


class TestGreedyParity:
    def test_evaluate_matches_sequential(self, small_db, workload):
        queries = list(workload)
        _, _, seq = make_trainer(small_db, workload, vectorized=False)
        _, _, vec = make_trainer(small_db, workload, vectorized=True)
        seq_records = seq.evaluate(queries, greedy=True)
        vec_records = vec.evaluate(queries, greedy=True)
        assert set(seq_records) == set(vec_records)
        for name in seq_records:
            assert vec_records[name].cost == seq_records[name].cost
            assert vec_records[name].reward == seq_records[name].reward

    def test_greedy_collection_same_trees(self, small_db, workload):
        """Engine-level parity: same greedy trees as one-by-one rollout."""
        env, agent, _ = make_trainer(small_db, workload, vectorized=True)
        queries = list(workload)
        engine = VectorRolloutEngine(
            [env] + [env.spawn() for _ in range(3)], agent.policy
        )
        batched = engine.collect(len(queries), greedy=True, queries=queries)
        solo_engine = VectorRolloutEngine([env.spawn()], agent.policy)
        solo = [
            solo_engine.collect(1, greedy=True, queries=[q])[0] for q in queries
        ]
        for one, many in zip(solo, batched):
            assert one.info["tree"].render() == many.info["tree"].render()
            assert one.total_reward == many.total_reward


class TestVectorizedTraining:
    def test_log_preserves_per_episode_records_in_order(self, small_db, workload):
        _, _, trainer = make_trainer(small_db, workload, vectorized=True)
        log = trainer.run(10)
        assert len(log) == 10
        episodes = [r.episode for r in log.records]
        assert episodes == sorted(episodes)
        assert all(r.cost is not None for r in log.records)
        assert all(r.expert_cost and r.expert_cost > 0 for r in log.records)

    def test_update_changes_weights_and_update_false_does_not(
        self, small_db, workload
    ):
        _, agent, trainer = make_trainer(small_db, workload, vectorized=True)
        before = agent.policy_net.output_layer.weight.copy()
        trainer.run(8, update=False)
        assert np.array_equal(before, agent.policy_net.output_layer.weight)
        trainer.run(8, update=True)
        assert not np.array_equal(before, agent.policy_net.output_layer.weight)

    def test_deterministic_given_seed(self, small_db, workload):
        def run():
            _, _, trainer = make_trainer(small_db, workload, vectorized=True)
            return trainer.run(12).rewards()

        assert np.array_equal(run(), run())

    def test_staged_env_spawn_supported(self, small_db, workload):
        rng = np.random.default_rng(4)
        baseline = ExpertBaseline(small_db)
        env = StagedPlanEnv(
            small_db, workload, stages=Stage.JOIN_ORDER | Stage.JOIN_OPERATOR,
            rng=rng, forbid_cross_products=False,
        )
        agent = make_agent(env, rng, "reinforce")
        trainer = Trainer(
            env, agent, baseline, rng, TrainingConfig(batch_size=4)
        )
        log = trainer.run(8)
        assert len(log) == 8

    def test_falls_back_without_spawn(self, small_db, workload):
        class NoSpawn:
            pass

        _, _, trainer = make_trainer(small_db, workload, vectorized=True)
        trainer.env = NoSpawn()
        assert trainer._vector_engine() is None
        trainer.env = object()
        trainer.config = TrainingConfig(vectorized=False)
        assert trainer._vector_engine() is None


class TestEngineEdgeCases:
    def test_zero_episodes(self, small_db, workload):
        env, agent, _ = make_trainer(small_db, workload, vectorized=True)
        engine = VectorRolloutEngine([env], agent.policy)
        assert engine.collect(0, greedy=True) == []

    def test_more_episodes_than_envs_refills_slots(self, small_db, workload):
        env, agent, _ = make_trainer(small_db, workload, vectorized=True)
        engine = VectorRolloutEngine([env, env.spawn()], agent.policy)
        queries = list(workload) * 2
        trajectories = engine.collect(
            len(queries), greedy=True, queries=queries
        )
        assert len(trajectories) == len(queries)
        assert all(t is not None and t.transitions for t in trajectories)

    def test_nonterminating_env_raises(self, small_db, workload):
        from repro.rl.env import StepResult

        class Loop:
            def reset(self):
                return np.zeros(2), np.ones(2, dtype=bool)

            def step(self, action):
                return StepResult(np.zeros(2), np.ones(2, dtype=bool), 0.0, False)

        env, agent, _ = make_trainer(small_db, workload, vectorized=True)

        class TinyPolicy:
            def act_batch(self, states, masks, rng=None, greedy=True):
                return (
                    np.zeros(len(states), dtype=np.int64),
                    np.zeros(len(states)),
                )

        engine = VectorRolloutEngine([Loop()], TinyPolicy())
        with pytest.raises(RuntimeError):
            engine.collect(1, greedy=True, max_steps=5)

    def test_requires_envs(self):
        with pytest.raises(ValueError):
            VectorRolloutEngine([], policy=None)
