"""Tests for the pluggable cardinality substrate: the CardinalityModel
interface, the histogram lane's bitwise-pinned seed formula, the
pessimistic upper-bound lane, the learned lane's training/staleness
machinery, and the lane stamping through the serving layer."""

import pickle

import numpy as np
import pytest

from repro.db.cardinality import (
    CardinalityEstimator,
    CardinalityModel,
    HistogramEstimator,
    PessimisticEstimator,
    QueryCardinalities,
    q_error,
)
from repro.db.learned_cardinality import LearnedEstimator, harvest_training_pairs
from repro.db.predicates import (
    BetweenPredicate,
    ColumnRef,
    CompareOp,
    Comparison,
    InPredicate,
)
from repro.db.query import parse_query
from repro.optimizer.bitset_dp import FastJoinContext
from tests.helpers import brute_force_count


@pytest.fixture()
def chain_query(small_db):
    q = parse_query(
        "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id "
        "AND a.x = 1 AND c.w >= 2",
        name="lanes-chain",
    )
    q.validate_against(small_db.schema)
    return q


def _train_queries():
    qs = [
        parse_query(
            "SELECT * FROM a, b WHERE a.id = b.a_id AND a.x = 1", name="t-ab"
        ),
        parse_query(
            "SELECT * FROM b, c WHERE b.id = c.b_id AND c.w >= 2", name="t-bc"
        ),
        parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="t-abc",
        ),
    ]
    return qs


def _fitted_learned(db, epochs=40):
    est = db.use_estimator(LearnedEstimator(db.schema, db.stats, seed=0))
    pairs = harvest_training_pairs(db, _train_queries())
    assert pairs, "executor produced no training pairs"
    est.fit(db, pairs, epochs=epochs)
    return est


class TestInterface:
    def test_deprecated_alias_is_histogram(self):
        assert CardinalityEstimator is HistogramEstimator
        assert issubclass(HistogramEstimator, CardinalityModel)
        assert issubclass(PessimisticEstimator, CardinalityModel)
        assert issubclass(LearnedEstimator, CardinalityModel)

    def test_lane_names_and_product_form(self):
        assert HistogramEstimator.lane == "histogram"
        assert PessimisticEstimator.lane == "pessimistic"
        assert LearnedEstimator.lane == "learned"
        assert HistogramEstimator.product_form
        assert PessimisticEstimator.product_form
        assert not LearnedEstimator.product_form

    def test_default_lane_is_histogram(self, small_db):
        assert small_db.estimator_lane == "histogram"
        assert isinstance(small_db.estimator(), HistogramEstimator)

    def test_estimator_instance_is_shared(self, small_db):
        assert small_db.estimator() is small_db.estimator()

    def test_use_estimator_swaps_and_bumps_epoch(self, fresh_small_db):
        db = fresh_small_db
        before = db.stats_epoch
        est = db.use_estimator(PessimisticEstimator)
        assert est.lane == "pessimistic"
        assert db.estimator_lane == "pessimistic"
        assert db.stats_epoch > before

    def test_factory_may_be_instance(self, fresh_small_db):
        db = fresh_small_db
        inst = PessimisticEstimator(db.schema, db.stats)
        assert db.use_estimator(inst) is inst
        assert db.estimator() is inst

    def test_probe_shape(self, small_db):
        probe = small_db.estimator_probe()
        assert probe["lane"] == "histogram"
        assert probe["stale"] is False
        assert set(probe["counts"]) >= {"estimates", "fallbacks"}

    def test_q_error_math(self):
        assert q_error(10.0, 1.0) == pytest.approx(10.0)
        assert q_error(1.0, 10.0) == pytest.approx(10.0)
        assert q_error(7.0, 7.0) == 1.0
        # Both sides clamp to one row: zero truth is not a div-by-zero.
        assert q_error(0.5, 0.0) == 1.0
        assert q_error(4.0, 0.0) == pytest.approx(4.0)


class TestHistogramPinnedBitwise:
    """The histogram lane must reproduce the seed formula float-exactly:
    scan rows multiplied in sorted alias order, join selectivities in
    predicate declaration order, clamped to one row at the end."""

    def _seed_formula(self, db, query, aliases):
        est = db.estimator()
        rows = 1.0
        for alias in sorted(aliases):
            table = query.table_of(alias)
            sel = 1.0
            for pred in query.selections_for(alias):
                sel *= est.predicate_selectivity(pred, table)
            rows *= max(1.0, float(db.stats[table].n_rows) * sel)
        for pred in query.joins:
            if pred.left.alias in aliases and pred.right.alias in aliases:
                rows *= est.join_selectivity(pred, query)
        return max(1.0, rows)

    def test_rows_for_aliases_bitwise(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        for aliases in (
            frozenset(["a"]),
            frozenset(["a", "b"]),
            frozenset(["b", "c"]),
            frozenset(["a", "c"]),
            frozenset(["a", "b", "c"]),
        ):
            assert cards.rows_for_aliases(aliases) == self._seed_formula(
                small_db, chain_query, aliases
            )

    def test_fast_context_product_path_bitwise(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        ctx = FastJoinContext(chain_query, cards)
        jg = chain_query.join_graph_index()
        for mask in range(1, 1 << jg.n):
            aliases = frozenset(jg.aliases_of(mask))
            assert ctx.rows(mask) == cards.rows_for_aliases(aliases)

    def test_histogram_prior_matches_rows(self, small_db, chain_query):
        # For the histogram lane the two memo layers are the same number.
        cards = small_db.cardinalities(chain_query)
        s = frozenset(["a", "b", "c"])
        assert cards.histogram_rows_for_aliases(s) == cards.rows_for_aliases(s)


class TestPessimisticDominates:
    """The pessimistic lane never estimates below the histogram lane,
    per predicate class, and upper-bounds the executor truth on the
    tree-shaped FK join graph."""

    @pytest.fixture()
    def lanes(self, small_db):
        hist = HistogramEstimator(small_db.schema, small_db.stats)
        pess = PessimisticEstimator(small_db.schema, small_db.stats)
        return hist, pess

    def _mcv_value(self, small_db):
        return float(small_db.stats["a"].columns["x"].mcv_values[0])

    @pytest.mark.parametrize(
        "op", [CompareOp.EQ, CompareOp.NE, CompareOp.LT, CompareOp.LE,
               CompareOp.GT, CompareOp.GE]
    )
    def test_comparison_classes(self, small_db, lanes, op):
        hist, pess = lanes
        for value in (self._mcv_value(small_db), 3.5, -10.0, 10**6):
            pred = Comparison(ColumnRef("a", "x"), op, value)
            assert pess.predicate_selectivity(pred, "a") >= (
                hist.predicate_selectivity(pred, "a")
            )

    def test_between_in_classes(self, small_db, lanes):
        hist, pess = lanes
        mcv = self._mcv_value(small_db)
        for pred in (
            BetweenPredicate(ColumnRef("a", "x"), 1.0, 5.0),
            BetweenPredicate(ColumnRef("a", "f"), 10.5, 80.25),
            InPredicate(ColumnRef("a", "x"), (mcv, 2.0, 99.0)),
        ):
            assert pess.predicate_selectivity(pred, "a") >= (
                hist.predicate_selectivity(pred, "a")
            )

    def test_no_stats_claims_nothing(self, small_db, lanes):
        _, pess = lanes
        pred = Comparison(ColumnRef("a", "x"), CompareOp.EQ, 1.0)
        assert pess.predicate_selectivity(pred, "no_such_table") == 1.0

    def test_conjunction_dominates_product(self, small_db, lanes):
        hist, pess = lanes
        preds = [
            Comparison(ColumnRef("a", "x"), CompareOp.EQ, 1.0),
            Comparison(ColumnRef("a", "f"), CompareOp.LT, 50.0),
        ]
        assert pess.conjunction_selectivity(preds, "a") >= (
            hist.conjunction_selectivity(preds, "a")
        )

    def test_join_selectivity_dominates(self, small_db, lanes, chain_query):
        hist, pess = lanes
        for pred in chain_query.joins:
            assert pess.join_selectivity(pred, chain_query) >= (
                hist.join_selectivity(pred, chain_query)
            )

    def test_alias_set_dominates_histogram(self, small_db, chain_query):
        hist_cards = small_db.cardinalities(chain_query)
        pess_cards = QueryCardinalities(
            PessimisticEstimator(small_db.schema, small_db.stats), chain_query
        )
        for aliases in (
            frozenset(["a", "b"]),
            frozenset(["b", "c"]),
            frozenset(["a", "b", "c"]),
        ):
            assert pess_cards.rows_for_aliases(aliases) >= (
                hist_cards.rows_for_aliases(aliases)
            )

    def test_upper_bounds_executor_truth(self, small_db):
        # No selections: the bound must hold against the exact join size
        # (selection bounds depend on the sampled MCVs, the join bound
        # does not — FK chains are tree-shaped).
        q = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="truth-chain",
        )
        q.validate_against(small_db.schema)
        pess_cards = QueryCardinalities(
            PessimisticEstimator(small_db.schema, small_db.stats), q
        )
        truth = brute_force_count(small_db, q)
        assert pess_cards.rows_for_aliases(frozenset(["a", "b", "c"])) >= truth


class TestLearnedLane:
    def test_untrained_falls_back(self, fresh_small_db):
        db = fresh_small_db
        est = db.use_estimator(LearnedEstimator)
        q = _train_queries()[0]
        hist = QueryCardinalities(
            HistogramEstimator(db.schema, db.stats), q
        ).rows_for_aliases(frozenset(["a", "b"]))
        got = db.cardinalities(q).rows_for_aliases(frozenset(["a", "b"]))
        assert got == hist
        assert est.counts["fallbacks"] > 0
        assert est.counts["learned"] == 0

    def test_fit_serves_learned_estimates(self, fresh_small_db):
        db = fresh_small_db
        est = _fitted_learned(db)
        q = _train_queries()[2]
        db.cardinalities(q).rows_for_aliases(frozenset(["a", "b", "c"]))
        assert est.counts["learned"] > 0
        probe = est.probe()
        assert probe["trained"] and not probe["stale"]

    def test_epoch_bump_invalidates_then_refit_restores(self, fresh_small_db):
        db = fresh_small_db
        est = _fitted_learned(db)
        db.analyze(tables=["c"])
        assert est.stale_tables() == ["c"]
        assert db.estimator_probe()["stale"] is True
        q = _train_queries()[2]
        cards = db.cardinalities(q)
        before = est.counts["stale_fallbacks"]
        # A set touching the re-ANALYZEd table falls back to histogram...
        got = cards.rows_for_aliases(frozenset(["b", "c"]))
        assert est.counts["stale_fallbacks"] == before + 1
        assert got == cards.histogram_rows_for_aliases(frozenset(["b", "c"]))
        # ...while a set not touching it keeps serving learned estimates.
        learned_before = est.counts["learned"]
        cards.rows_for_aliases(frozenset(["a", "b"]))
        assert est.counts["learned"] == learned_before + 1
        # Refitting on fresh truth clears the staleness.
        pairs = harvest_training_pairs(db, _train_queries())
        est.fit(db, pairs, epochs=10)
        assert est.stale_tables() == []

    def test_learned_lane_plans_end_to_end(self, fresh_small_db):
        from repro.optimizer.planner import Planner

        db = fresh_small_db
        est = _fitted_learned(db)
        learned_before = est.counts["learned"]
        q = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id "
            "AND a.x = 1",
            name="e2e",
        )
        q.validate_against(db.schema)
        result = Planner(db).optimize(q)
        assert result.plan is not None
        # The DP's non-product path routed subset estimates through the
        # interface, so the trained model actually served the search.
        assert est.counts["learned"] > learned_before


class TestPickling:
    def test_class_factories_pickle(self):
        for cls in (HistogramEstimator, PessimisticEstimator, LearnedEstimator):
            assert pickle.loads(pickle.dumps(cls)) is cls

    def test_database_roundtrip_preserves_lane(self, fresh_small_db):
        db = fresh_small_db
        db.use_estimator(PessimisticEstimator)
        clone = pickle.loads(pickle.dumps(db))
        assert clone.estimator_lane == "pessimistic"
        q = _train_queries()[0]
        s = frozenset(["a", "b"])
        assert clone.cardinalities(q).rows_for_aliases(s) == (
            db.cardinalities(q).rows_for_aliases(s)
        )

    def test_trained_learned_roundtrip(self, fresh_small_db):
        db = fresh_small_db
        _fitted_learned(db)
        q = _train_queries()[2]
        s = frozenset(["a", "b", "c"])
        want = db.cardinalities(q).rows_for_aliases(s)
        clone = pickle.loads(pickle.dumps(db))
        est2 = clone.estimator()
        assert est2.lane == "learned" and est2.is_trained()
        assert clone.cardinalities(q).rows_for_aliases(s) == want
        # The clone's epoch view is its own: analyzing the clone stales
        # the clone, not the original.
        clone.analyze(tables=["a"])
        assert est2.stale_tables() == ["a"]
        assert db.estimator().stale_tables() == []


class TestServingLaneStamp:
    def _service(self, db, **kwargs):
        from repro.core.featurize import QueryFeaturizer
        from repro.rl.ppo import PPOAgent
        from repro.serving import OptimizerService

        featurizer = QueryFeaturizer(db.schema, max_relations=3)
        agent = PPOAgent(
            featurizer.state_dim,
            featurizer.n_pair_actions,
            np.random.default_rng(3),
        )
        return OptimizerService(db, agent, featurizer=featurizer, **kwargs)

    def test_served_plan_carries_lane(self, fresh_small_db):
        db = fresh_small_db
        db.use_estimator(PessimisticEstimator)
        service = self._service(db)
        q = _train_queries()[0]
        plan = service.optimize(q)
        assert plan.estimator_lane == "pessimistic"
        counters = service.counters()
        assert counters["estimator_estimates"] > 0

    def test_db_metrics_gate(self, fresh_small_db):
        db = fresh_small_db
        on = self._service(db)
        off = self._service(db, db_metrics=False)
        assert on.registry.get("repro_estimator_estimates_total") is not None
        assert on.registry.get("repro_estimator_lane_histogram") is not None
        assert off.registry.get("repro_estimator_estimates_total") is None

    def test_default_lane_stamp(self, fresh_small_db):
        service = self._service(fresh_small_db)
        plan = service.optimize(_train_queries()[0])
        assert plan.estimator_lane == "histogram"
