"""Multi-threaded hammer tests for the serving-path caches.

The concurrent front end points worker shards, the flusher, and
operator threads (counters, statistics refreshes) at the same caches.
These tests drive the caches from many threads at once and assert the
two properties locking must buy: counter exactness (every lookup is
counted exactly once — hits + misses equals lookups issued) and
expiry safety (a TTL cache never serves an entry that was already
expired when the lookup began). No test sleeps; workloads are sized to
finish in well under a second.
"""

import threading

import numpy as np
import pytest

from repro.db.query import parse_query
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.memo import SubPlanCostMemo
from repro.serving import ExperienceBuffer, PlanCache

N_THREADS = 8
OPS = 300


def run_threads(worker):
    """Start N_THREADS running ``worker(k)`` after a common barrier."""
    barrier = threading.Barrier(N_THREADS)
    errors = []

    def wrapped(k):
        barrier.wait()
        try:
            worker(k)
        except BaseException as exc:  # surface into the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(k,)) for k in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
    assert not errors, errors[0]


class TestPlanCacheHammer:
    def test_counters_stay_exact_under_contention(self):
        cache = PlanCache(capacity=32)

        def worker(k):
            for i in range(OPS):
                key = f"key-{(k + i) % 48}"
                if i % 5 == 0:
                    cache.put(key, (k, i), tables={f"t{i % 3}"})
                elif i % 11 == 0:
                    cache.invalidate(key)
                elif i % 17 == 0:
                    cache.invalidate_tables({f"t{i % 3}"})
                else:
                    cache.get(key)

        run_threads(worker)
        gets = sum(
            1
            for k in range(N_THREADS)
            for i in range(OPS)
            if i % 5 and i % 11 and i % 17
        )
        assert cache.stats.lookups == gets
        assert cache.stats.hits + cache.stats.misses == gets
        assert len(cache) <= 32

    def test_expired_entries_are_never_served(self):
        clock_lock = threading.Lock()
        now = [0.0]

        def clock():
            with clock_lock:
                return now[0]

        def advance():
            with clock_lock:
                now[0] += 0.25

        cache = PlanCache(capacity=64, ttl_s=1.0, clock=clock)

        def worker(k):
            if k == 0:  # the clock thread
                for _ in range(OPS):
                    advance()
                return
            for i in range(OPS):
                key = f"key-{i % 8}"
                if i % 3 == 0:
                    cache.put(key, clock())
                else:
                    before = clock()
                    value = cache.get(key)
                    if value is not None:
                        # value IS its own insertion time: if the entry
                        # was already expired when the lookup began, the
                        # cache must not have returned it.
                        assert before - value <= 1.0

        run_threads(worker)

    def test_clear_races_with_put(self):
        cache = PlanCache(capacity=128)

        def worker(k):
            for i in range(OPS):
                if k == 0 and i % 20 == 0:
                    cache.clear()
                else:
                    cache.put(f"key-{k}-{i}", i)
                    cache.get(f"key-{k}-{i}")

        run_threads(worker)
        assert len(cache) <= 128


class TestSubPlanCostMemoHammer:
    def test_counters_stay_exact_under_contention(self):
        memo = SubPlanCostMemo(capacity=64)

        def worker(k):
            for i in range(OPS):
                key = f"frag-{(k * 7 + i) % 96}"
                if i % 4 == 0:
                    memo.put(key, None, None, tables={f"t{i % 4}"})
                elif i % 13 == 0:
                    memo.invalidate_tables({f"t{i % 4}"})
                else:
                    memo.get(key)

        run_threads(worker)
        gets = sum(
            1
            for k in range(N_THREADS)
            for i in range(OPS)
            if i % 4 and i % 13
        )
        assert memo.hits + memo.misses == gets
        assert len(memo) <= 64

    def test_epoch_sync_races_with_readers(self):
        memo = SubPlanCostMemo(capacity=256)
        table_epochs = {"a": 0, "b": 0}

        def worker(k):
            for i in range(OPS):
                if k == 0 and i % 25 == 0:
                    table_epochs["a"] += 1
                    memo.sync_epoch(
                        memo.epoch + 1, dict(table_epochs)
                    )
                else:
                    memo.put(f"frag-{k}-{i}", None, None, tables={"a" if i % 2 else "b"})
                    memo.get(f"frag-{k}-{i}")

        run_threads(worker)
        assert len(memo) <= 256


class TestExperienceBufferHammer:
    def test_adds_and_drains_account_for_everything(self):
        buffer = ExperienceBuffer(capacity=64)
        drained = []
        drained_lock = threading.Lock()

        def worker(k):
            if k == 0:
                for _ in range(OPS // 10):
                    got = buffer.drain()
                    with drained_lock:
                        drained.extend(got)
                return
            for i in range(OPS):
                buffer.add((k, i))

        run_threads(worker)
        added = (N_THREADS - 1) * OPS
        assert buffer.added == added
        remaining = buffer.drain()
        assert len(drained) + len(remaining) + buffer.dropped == added


class TestMetricsRegistryHammer:
    def test_read_time_merge_races_with_shard_writers(self):
        # The telemetry concurrency model: one registry per shard,
        # hot-path writes into shard-local instruments, and monitoring
        # reads via MetricsRegistry.merge while writes are in flight.
        # Merged reads must be exact at quiescence and monotone while
        # racing (counters only go up, so sequential merge snapshots
        # can never go backwards or overshoot the final total).
        shards = [MetricsRegistry() for _ in range(N_THREADS)]
        counters = [r.counter("repro_test_ops_total") for r in shards]
        hists = [r.histogram("repro_test_ms") for r in shards]
        mid_run_totals = []

        def worker(k):
            if k == 0:  # the monitoring thread
                for _ in range(OPS // 10):
                    merged = MetricsRegistry.merge(shards)
                    mid_run_totals.append(merged.get("repro_test_ops_total").value)
                return
            for i in range(OPS):
                counters[k].inc()
                hists[k].observe(float(i % 7) + 0.5)

        run_threads(worker)
        writes = (N_THREADS - 1) * OPS
        final = MetricsRegistry.merge(shards)
        assert final.get("repro_test_ops_total").value == writes
        hist = final.get("repro_test_ms")
        assert hist.count == writes
        assert hist.sum == pytest.approx(
            sum(float(i % 7) + 0.5 for i in range(OPS)) * (N_THREADS - 1)
        )
        assert mid_run_totals == sorted(mid_run_totals)
        assert all(0 <= total <= writes for total in mid_run_totals)

    def test_single_histogram_counts_stay_exact_under_contention(self):
        registry = MetricsRegistry()

        def worker(k):
            hist = registry.histogram("repro_test_ms")  # get-or-create race
            for i in range(OPS):
                hist.observe(float(k * OPS + i) / 100.0 + 0.001)

        run_threads(worker)
        hist = registry.get("repro_test_ms")
        assert hist.count == N_THREADS * OPS
        assert sum(hist._counts) == N_THREADS * OPS


class TestDatabaseCardsCacheHammer:
    def test_concurrent_estimation_is_safe_and_consistent(self, small_db):
        chain = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id", "chain"
        )
        per_thread = [
            parse_query("SELECT * FROM b, c WHERE b.id = c.b_id", f"bc{k}")
            for k in range(N_THREADS)
        ]
        results = [None] * N_THREADS

        def worker(k):
            mine = small_db.cardinalities(per_thread[k])
            shared = small_db.cardinalities(chain)
            results[k] = (
                mine.rows_for_aliases(frozenset(["b", "c"])),
                shared.rows_for_aliases(frozenset(["a", "b", "c"])),
            )

        run_threads(worker)
        assert len({r for r in results}) == 1  # same estimates everywhere
