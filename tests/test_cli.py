"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_global_options(self):
        args = build_parser().parse_args(["--scale", "0.1", "--seed", "3", "info"])
        assert args.scale == 0.1
        assert args.seed == 3
        assert args.command == "info"

    def test_fig3a_options(self):
        args = build_parser().parse_args(["fig3a", "--episodes", "50"])
        assert args.episodes == 50
        assert args.save is None

    def test_serve_bench_rejects_bad_knobs_before_building(self, capsys):
        assert main(TINY + ["serve-bench", "--zipf", "1.0"]) == 2
        assert main(TINY + ["serve-bench", "--threshold", "-1"]) == 2
        assert main(TINY + ["serve-bench", "--burst", "0"]) == 2
        # Validation fires before the database build starts.
        assert "building" not in capsys.readouterr().out

    def test_serve_bench_options(self):
        args = build_parser().parse_args(
            ["serve-bench", "--requests", "64", "--burst", "8", "--threshold", "2.0"]
        )
        assert args.requests == 64
        assert args.burst == 8
        assert args.threshold == 2.0
        assert args.cache_capacity == 512
        # Concurrency defaults: synchronous unless asked otherwise.
        assert args.concurrency == 1
        assert args.shards == 2
        assert args.max_delay_ms == 2.0

    def test_serve_bench_concurrency_options(self):
        args = build_parser().parse_args(
            ["serve-bench", "--concurrency", "16", "--shards", "4",
             "--max-delay-ms", "5.5"]
        )
        assert args.concurrency == 16
        assert args.shards == 4
        assert args.max_delay_ms == 5.5


TINY = ["--scale", "0.02", "--seed", "1"]


class TestCommands:
    def test_info(self, capsys):
        assert main(TINY + ["info"]) == 0
        out = capsys.readouterr().out
        assert "title" in out
        assert "total rows" in out

    def test_plan(self, capsys):
        assert main(TINY + ["plan", "1a"]) == 0
        out = capsys.readouterr().out
        assert "SELECT" in out
        assert "latency=" in out

    def test_fig3a_tiny_run_with_checkpoint(self, capsys, tmp_path):
        save_dir = tmp_path / "agent"
        assert main(TINY + ["fig3a", "--episodes", "30", "--save", str(save_dir)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert (save_dir / "meta.json").exists()

    def test_fig3c_tiny_sweep(self, capsys):
        assert main(TINY + ["fig3c", "--max-relations", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3c" in out
        assert "rejoin" in out

    def test_info_probe_reports_hit_rate(self, capsys):
        assert main(TINY + ["info", "--probe", "2"]) == 0
        out = capsys.readouterr().out
        assert "serving counters" in out
        assert "cache_hit_rate" in out
        # Two passes over the probes: the second is all hits.
        assert "0.50" in out

    def test_serve_bench_tiny(self, capsys):
        assert main(
            TINY + ["serve-bench", "--requests", "24", "--burst", "8",
                    "--episodes", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput (req/s)" in out
        assert "p95 latency (ms)" in out
        assert "cache hit rate" in out
        assert "fallback rate" in out
        assert "hands-free retraining" in out

    def test_serve_bench_tiny_concurrent(self, capsys):
        assert main(
            TINY + ["serve-bench", "--requests", "24", "--burst", "8",
                    "--episodes", "4", "--concurrency", "4", "--shards", "2",
                    "--max-delay-ms", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "open-loop clients over 2 shards" in out
        assert "frontend_submitted" in out
        assert "shard0_requests" in out
        assert "hands-free retraining" in out

    def test_serve_bench_rejects_bad_concurrency_knobs(self, capsys):
        assert main(TINY + ["serve-bench", "--concurrency", "0"]) == 2
        assert main(TINY + ["serve-bench", "--shards", "0"]) == 2
        assert main(TINY + ["serve-bench", "--max-delay-ms", "-1"]) == 2
        assert "serve-bench" in capsys.readouterr().err

    def test_bootstrap_tiny(self, capsys):
        assert (
            main(TINY + ["bootstrap", "--phase1", "24", "--phase2", "12"]) == 0
        )
        out = capsys.readouterr().out
        assert "reward jump at switch" in out
        assert "naive" in out and "scaled" in out and "transfer" in out


class TestObservabilityCommands:
    def test_metrics_exposition_is_machine_readable(self, capsys):
        from repro.obs import parse_exposition

        assert main(TINY + ["metrics", "--probe", "2"]) == 0
        out = capsys.readouterr().out
        exposition = out[out.index("# HELP"):]
        samples = parse_exposition(exposition)
        assert samples["repro_serving_requests_total"] == 4.0  # 2 probes x2
        assert samples["repro_cache_hits_total"] >= 2.0  # second pass hits
        assert any(k.startswith("repro_request_e2e_ms_bucket") for k in samples)

    def test_metrics_json_snapshot(self, capsys):
        import json

        assert main(TINY + ["metrics", "--probe", "2", "--json"]) == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out[out.index("{"):])
        assert snapshot["repro_serving_requests_total"] == 4.0
        assert snapshot["repro_request_e2e_ms"]["count"] == 4.0

    def test_trace_slowest_prints_complete_span_trees(self, capsys):
        assert main(TINY + ["trace", "--slowest", "2", "--probe", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace " in out and "request" in out
        for stage in ("queue_wait", "worker_queue", "serve", "cache_lookup"):
            assert stage in out
        assert "span coverage" in out

    def test_trace_reads_a_jsonl_dump_offline(self, capsys, tmp_path):
        from repro.obs.trace import Trace, TraceStore

        store = TraceStore()
        for trace_id, name in (("a", "req-a"), ("b", "req-b")):
            trace = Trace("request", trace_id=trace_id, attrs={"query": name})
            trace.record("serve", 1.0)
            trace.finish()
            store.add(trace)
        path = tmp_path / "traces.jsonl"
        store.write_jsonl(path)
        assert main(TINY + ["trace", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "building" not in out  # offline: no database probe
        assert "query=req-a" in out and "query=req-b" in out

    def test_serve_bench_writes_telemetry_artifacts(self, capsys, tmp_path):
        import json

        from repro.obs import EventLog
        from repro.obs.trace import TraceStore

        trace_out = tmp_path / "traces.jsonl"
        events_out = tmp_path / "events.jsonl"
        metrics_out = tmp_path / "metrics.json"
        assert main(
            TINY + ["serve-bench", "--requests", "16", "--burst", "8",
                    "--episodes", "4", "--sample-rate", "1.0",
                    "--slo-ms", "0.01",
                    "--trace-out", str(trace_out),
                    "--events-out", str(events_out),
                    "--metrics-out", str(metrics_out)]
        ) == 0
        out = capsys.readouterr().out
        assert "per-stage latency breakdown" in out
        assert "serve" in out and "cache_lookup" in out
        traces = TraceStore.read_jsonl(trace_out)
        assert len(traces) == 16  # 100% sampling retains every request
        events = EventLog.parse_jsonl(events_out.read_text())
        assert any(e["kind"] == "slow_query" for e in events)
        assert any(e["kind"] == "retraining_replay" for e in events)
        snapshot = json.loads(metrics_out.read_text())
        assert snapshot["repro_serving_requests_total"] == 16.0

    def test_serve_bench_no_telemetry_still_serves(self, capsys):
        assert main(
            TINY + ["serve-bench", "--requests", "16", "--burst", "8",
                    "--episodes", "4", "--no-telemetry"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput (req/s)" in out
        assert "per-stage latency breakdown" not in out

    def test_serve_bench_rejects_bad_sample_rate(self, capsys):
        assert main(TINY + ["serve-bench", "--sample-rate", "1.5"]) == 2
        assert "serve-bench" in capsys.readouterr().err
