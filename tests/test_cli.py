"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_global_options(self):
        args = build_parser().parse_args(["--scale", "0.1", "--seed", "3", "info"])
        assert args.scale == 0.1
        assert args.seed == 3
        assert args.command == "info"

    def test_fig3a_options(self):
        args = build_parser().parse_args(["fig3a", "--episodes", "50"])
        assert args.episodes == 50
        assert args.save is None

    def test_serve_bench_rejects_bad_knobs_before_building(self, capsys):
        assert main(TINY + ["serve-bench", "--zipf", "1.0"]) == 2
        assert main(TINY + ["serve-bench", "--threshold", "-1"]) == 2
        assert main(TINY + ["serve-bench", "--burst", "0"]) == 2
        # Validation fires before the database build starts.
        assert "building" not in capsys.readouterr().out

    def test_serve_bench_options(self):
        args = build_parser().parse_args(
            ["serve-bench", "--requests", "64", "--burst", "8", "--threshold", "2.0"]
        )
        assert args.requests == 64
        assert args.burst == 8
        assert args.threshold == 2.0
        assert args.cache_capacity == 512
        # Concurrency defaults: synchronous unless asked otherwise.
        assert args.concurrency == 1
        assert args.shards == 2
        assert args.max_delay_ms == 2.0

    def test_serve_bench_concurrency_options(self):
        args = build_parser().parse_args(
            ["serve-bench", "--concurrency", "16", "--shards", "4",
             "--max-delay-ms", "5.5"]
        )
        assert args.concurrency == 16
        assert args.shards == 4
        assert args.max_delay_ms == 5.5


TINY = ["--scale", "0.02", "--seed", "1"]


class TestCommands:
    def test_info(self, capsys):
        assert main(TINY + ["info"]) == 0
        out = capsys.readouterr().out
        assert "title" in out
        assert "total rows" in out

    def test_plan(self, capsys):
        assert main(TINY + ["plan", "1a"]) == 0
        out = capsys.readouterr().out
        assert "SELECT" in out
        assert "latency=" in out

    def test_fig3a_tiny_run_with_checkpoint(self, capsys, tmp_path):
        save_dir = tmp_path / "agent"
        assert main(TINY + ["fig3a", "--episodes", "30", "--save", str(save_dir)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert (save_dir / "meta.json").exists()

    def test_fig3c_tiny_sweep(self, capsys):
        assert main(TINY + ["fig3c", "--max-relations", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3c" in out
        assert "rejoin" in out

    def test_info_probe_reports_hit_rate(self, capsys):
        assert main(TINY + ["info", "--probe", "2"]) == 0
        out = capsys.readouterr().out
        assert "serving counters" in out
        assert "cache_hit_rate" in out
        # Two passes over the probes: the second is all hits.
        assert "0.50" in out

    def test_serve_bench_tiny(self, capsys):
        assert main(
            TINY + ["serve-bench", "--requests", "24", "--burst", "8",
                    "--episodes", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput (req/s)" in out
        assert "p95 latency (ms)" in out
        assert "cache hit rate" in out
        assert "fallback rate" in out
        assert "hands-free retraining" in out

    def test_serve_bench_tiny_concurrent(self, capsys):
        assert main(
            TINY + ["serve-bench", "--requests", "24", "--burst", "8",
                    "--episodes", "4", "--concurrency", "4", "--shards", "2",
                    "--max-delay-ms", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "open-loop clients over 2 shards" in out
        assert "frontend_submitted" in out
        assert "shard0_requests" in out
        assert "hands-free retraining" in out

    def test_serve_bench_rejects_bad_concurrency_knobs(self, capsys):
        assert main(TINY + ["serve-bench", "--concurrency", "0"]) == 2
        assert main(TINY + ["serve-bench", "--shards", "0"]) == 2
        assert main(TINY + ["serve-bench", "--max-delay-ms", "-1"]) == 2
        assert "serve-bench" in capsys.readouterr().err

    def test_bootstrap_tiny(self, capsys):
        assert (
            main(TINY + ["bootstrap", "--phase1", "24", "--phase2", "12"]) == 0
        )
        out = capsys.readouterr().out
        assert "reward jump at switch" in out
        assert "naive" in out and "scaled" in out and "transfer" in out
