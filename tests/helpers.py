"""Test helpers: a brute-force reference for query results.

The brute-force evaluator joins row-index tuples with plain Python
loops, independent of any executor code, and is used to validate plan
execution end-to-end on small databases.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import numpy as np

from repro.db.engine import Database
from repro.db.query import Query
from repro.db.schema import NULL_INT


def _selection_ids(db: Database, query: Query, alias: str) -> List[int]:
    table = db.tables[query.table_of(alias)]
    mask = np.ones(table.n_rows, dtype=bool)
    for pred in query.selections_for(alias):
        mask &= pred.evaluate(table.column(pred.column.column))
    return list(np.nonzero(mask)[0])


def _value(db: Database, query: Query, alias: str, column: str, row: int):
    return db.tables[query.table_of(alias)].column(column)[row]


def brute_force_rows(db: Database, query: Query) -> List[Dict[str, int]]:
    """All joined row-id combinations satisfying the query (pre-aggregate)."""
    aliases = query.aliases
    candidates = {a: _selection_ids(db, query, a) for a in aliases}
    results = []
    for combo in itertools.product(*(candidates[a] for a in aliases)):
        rows = dict(zip(aliases, combo))
        ok = True
        for join in query.joins:
            lv = _value(db, query, join.left.alias, join.left.column, rows[join.left.alias])
            rv = _value(db, query, join.right.alias, join.right.column, rows[join.right.alias])
            if lv == NULL_INT or rv == NULL_INT or (isinstance(lv, float) and np.isnan(lv)):
                ok = False
                break
            if lv != rv:
                ok = False
                break
        if ok:
            results.append(rows)
    return results


def brute_force_count(db: Database, query: Query) -> int:
    return len(brute_force_rows(db, query))


def brute_force_groups(db: Database, query: Query) -> int:
    """Number of distinct GROUP BY key combinations in the true result."""
    rows = brute_force_rows(db, query)
    if not query.group_by:
        return 1 if rows or not query.aggregates else 1
    keys = set()
    for row in rows:
        key = tuple(
            _value(db, query, ref.alias, ref.column, row[ref.alias])
            for ref in query.group_by
        )
        keys.add(key)
    return len(keys)
