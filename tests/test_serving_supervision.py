"""Tests for shard supervision: the circuit breaker state machine (with
an injectable clock), worker kill/respawn/reroute, and failure routing
when every shard is gone."""

import time

import numpy as np
import pytest

from repro.core.featurize import QueryFeaturizer
from repro.db.query import parse_query
from repro.rl.ppo import PPOAgent
from repro.serving import (
    CircuitBreaker,
    FrontEndConfig,
    RetriesExhausted,
    ServingConfig,
    ServingFrontEnd,
    ShardFailed,
    fingerprint,
)

BC = "SELECT * FROM b, c WHERE b.id = c.b_id"
AB = "SELECT * FROM a, b WHERE a.id = b.a_id"


@pytest.fixture(scope="module")
def featurizer(small_db):
    return QueryFeaturizer(small_db.schema, max_relations=3)


@pytest.fixture(scope="module")
def agent(small_db, featurizer):
    return PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(3)
    )


def make_frontend(small_db, agent, featurizer, **config_kwargs):
    config_kwargs.setdefault("n_shards", 2)
    config_kwargs.setdefault("max_batch", 4)
    config_kwargs.setdefault("max_delay_ms", 5.0)
    config_kwargs.setdefault("backoff_base_ms", 2.0)
    config_kwargs.setdefault("backoff_cap_ms", 10.0)
    return ServingFrontEnd.build(
        small_db,
        agent,
        featurizer=featurizer,
        serving_config=ServingConfig(regression_threshold=1.5),
        config=FrontEndConfig(**config_kwargs),
    )


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("cooldown_s", 10.0)
        return CircuitBreaker(clock=clock, **kwargs), clock

    def test_trips_on_consecutive_failures_only(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_open_rejects_until_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(6.0)
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(4.0)

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make(probe_limit=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the probe slot
        assert breaker.state == "half_open"
        assert not breaker.allow()  # probe limit consumed
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        # Fresh cooldown from the failed probe.
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_reset_force_closes(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_transition_callback_sees_trips(self):
        seen = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2,
            cooldown_s=1.0,
            clock=clock,
            on_transition=lambda old, new: seen.append((old, new)),
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert seen == [("closed", "open"), ("open", "half_open"),
                        ("half_open", "closed")]


class TestSupervision:
    def test_killed_worker_is_respawned_and_serves(
        self, small_db, agent, featurizer
    ):
        frontend = make_frontend(
            small_db, agent, featurizer, n_shards=2, supervisor_interval_s=0.02
        )
        with frontend:
            # Warm both shards, then crash one.
            frontend.optimize_batch(
                [parse_query(BC, "bc"), parse_query(AB, "ab")], timeout=5.0
            )
            frontend.kill_worker(0)
            assert wait_until(lambda: frontend.stats.worker_restarts >= 1)
            # The respawned shard serves again (routing restored).
            served = frontend.optimize_batch(
                [parse_query(BC, "bc2"), parse_query(AB, "ab2")], timeout=5.0
            )
            assert all(plan.cost > 0 for plan in served)
            assert not frontend._down
            assert all(w.is_alive() for w in frontend._workers)
        assert frontend._outstanding == set()

    def test_down_shard_reroutes_to_survivor(self, small_db, agent, featurizer):
        # Supervision off: the shard stays down, so the reroute path
        # (not the respawn) must serve its traffic.
        frontend = make_frontend(
            small_db, agent, featurizer, n_shards=2, supervise=False
        )
        with frontend:
            query = parse_query(BC, "bc")
            home = frontend.ring.shard_for(fingerprint(query))
            frontend.kill_worker(home)
            assert wait_until(lambda: home in frontend._down)
            plan = frontend.optimize(parse_query(BC, "bc-rerouted"), timeout=5.0)
            assert plan.cost > 0
            assert frontend.stats.rerouted >= 1
            survivor = 1 - home
            assert frontend.services[survivor].stats.requests >= 1
        assert frontend._outstanding == set()

    def test_fallback_order_is_deterministic(self, small_db, agent, featurizer):
        frontend = make_frontend(
            small_db, agent, featurizer, n_shards=3, supervise=False
        )
        with frontend:
            ring = frontend.ring
            for i in range(20):
                order = ring.fallback_order(f"fp-{i}")
                assert order[0] == ring.shard_for(f"fp-{i}")
                assert sorted(order) == [0, 1, 2]
                assert order == ring.fallback_order(f"fp-{i}")

    def test_requests_held_by_dying_worker_are_retried(
        self, small_db, agent, featurizer
    ):
        # Kill the only shard with requests queued behind the kill:
        # they must fail over through ShardFailed retries, and with no
        # survivor and no supervisor, exhaust into a structured error.
        frontend = make_frontend(
            small_db,
            agent,
            featurizer,
            n_shards=1,
            supervise=False,
            max_attempts=2,
            backoff_base_ms=1.0,
        )
        with frontend:
            frontend.kill_worker(0)
            assert wait_until(lambda: 0 in frontend._down)
            future = frontend.submit(parse_query(BC, "stranded"))
            with pytest.raises(RetriesExhausted) as excinfo:
                future.result(timeout=5.0)
            assert isinstance(excinfo.value.__cause__, ShardFailed)
        assert frontend._outstanding == set()

    def test_killed_worker_mid_stream_strands_nothing(
        self, small_db, agent, featurizer
    ):
        # The future-lifecycle audit: kill a shard while a stream of
        # requests is in flight; every future must resolve (plan or
        # structured error), and the registry must end empty.
        frontend = make_frontend(
            small_db, agent, featurizer, n_shards=2, supervisor_interval_s=0.02
        )
        with frontend:
            futures = []
            for i in range(30):
                futures.append(frontend.submit(parse_query(BC, f"q{i}")))
                if i == 10:
                    frontend.kill_worker(0)
                    frontend.kill_worker(1)
            resolved = 0
            for future in futures:
                try:
                    plan = future.result(timeout=10.0)
                    assert plan.cost > 0
                    resolved += 1
                except Exception:
                    resolved += 1
            assert resolved == 30
            assert wait_until(lambda: not frontend._down)
        assert frontend._outstanding == set()
        assert frontend._inflight == 0
