"""Tests for repro.rl: env machinery, policy, REINFORCE, PPO, schedules.

Includes a tiny deterministic "corridor" environment both agents must
solve, which validates the full learning loop independent of any
database code.
"""

import numpy as np
import pytest

from repro.rl import (
    CategoricalPolicy,
    ConstantSchedule,
    ExponentialSchedule,
    LinearSchedule,
    PPOAgent,
    PPOConfig,
    ReinforceAgent,
    ReinforceConfig,
    StepResult,
    Trajectory,
    Transition,
    rollout,
)
from repro.nn import MLP


class CorridorEnv:
    """Walk right to win: 5 cells, actions {left, right, no-op}.

    Reward only at the terminal step (sparse, like query optimization):
    +1 if the agent reached the right end within the step limit.
    """

    length = 5
    state_dim = 5
    n_actions = 3

    def __init__(self, max_steps=12):
        self.max_steps = max_steps
        self.pos = 0
        self.steps = 0

    def _state(self):
        s = np.zeros(self.length)
        s[self.pos] = 1.0
        return s

    def _mask(self):
        mask = np.ones(3, dtype=bool)
        if self.pos == 0:
            mask[0] = False  # cannot go left off the edge
        return mask

    def reset(self):
        self.pos = 0
        self.steps = 0
        return self._state(), self._mask()

    def step(self, action):
        if not self._mask()[action]:
            raise ValueError("invalid action taken")
        if action == 0:
            self.pos -= 1
        elif action == 1:
            self.pos += 1
        self.steps += 1
        done = self.pos == self.length - 1 or self.steps >= self.max_steps
        reward = 1.0 if (done and self.pos == self.length - 1) else 0.0
        return StepResult(self._state(), self._mask(), reward, done)


class TestTrajectory:
    def test_returns_undiscounted(self):
        t = Trajectory(
            transitions=[
                Transition(np.zeros(1), np.ones(1, bool), 0, 0.0),
                Transition(np.zeros(1), np.ones(1, bool), 0, 0.0),
                Transition(np.zeros(1), np.ones(1, bool), 0, 3.0),
            ]
        )
        assert list(t.returns()) == [3.0, 3.0, 3.0]
        assert t.total_reward == 3.0

    def test_returns_discounted(self):
        t = Trajectory(
            transitions=[
                Transition(np.zeros(1), np.ones(1, bool), 0, 1.0),
                Transition(np.zeros(1), np.ones(1, bool), 0, 1.0),
            ]
        )
        assert list(t.returns(gamma=0.5)) == [1.5, 1.0]

    def test_rollout_terminates(self):
        env = CorridorEnv()
        rng = np.random.default_rng(0)

        def act(state, mask, rng_, greedy):
            valid = np.nonzero(mask)[0]
            return int(rng_.choice(valid)), 0.0

        trajectory = rollout(env, act, rng)
        assert 1 <= len(trajectory) <= env.max_steps

    def test_rollout_nonterminating_raises(self):
        class Loop:
            state_dim = 1
            n_actions = 1

            def reset(self):
                return np.zeros(1), np.ones(1, bool)

            def step(self, action):
                return StepResult(np.zeros(1), np.ones(1, bool), 0.0, False)

        with pytest.raises(RuntimeError):
            rollout(Loop(), lambda s, m, r, g: (0, 0.0), np.random.default_rng(0), max_steps=5)


class TestCategoricalPolicy:
    def make(self):
        net = MLP(4, [8], 3, rng=np.random.default_rng(0))
        return CategoricalPolicy(net)

    def test_probabilities_masked(self):
        policy = self.make()
        mask = np.array([[True, False, True]])
        probs = policy.probabilities(np.zeros((1, 4)), mask)
        assert probs[0, 1] == 0.0
        assert np.isclose(probs.sum(), 1.0)

    def test_act_respects_mask(self):
        policy = self.make()
        mask = np.array([False, True, False])
        rng = np.random.default_rng(1)
        for _ in range(20):
            action, logp = policy.act(np.zeros(4), mask, rng)
            assert action == 1
            assert logp == pytest.approx(0.0)

    def test_greedy_is_argmax(self):
        policy = self.make()
        probs = policy.probabilities(np.ones((1, 4)), None)[0]
        action, _ = policy.act(np.ones(4), None, np.random.default_rng(0), greedy=True)
        assert action == int(np.argmax(probs))

    def test_short_mask_padded_after_growth(self):
        policy = self.make()
        policy.net.grow_outputs(2, np.random.default_rng(2))
        short_mask = np.array([[True, True, True]])
        probs = policy.probabilities(np.zeros((1, 4)), short_mask)
        assert probs.shape == (1, 5)
        assert probs[0, 3] == 0.0 and probs[0, 4] == 0.0

    def test_too_long_mask_rejected(self):
        policy = self.make()
        with pytest.raises(ValueError):
            policy.probabilities(np.zeros((1, 4)), np.ones((1, 7), dtype=bool))

    def test_act_batch_greedy_matches_act(self):
        policy = self.make()
        states = np.random.default_rng(4).normal(size=(5, 4))
        masks = np.ones((5, 3), dtype=bool)
        actions, log_probs = policy.act_batch(states, masks, greedy=True)
        for row in range(5):
            action, logp = policy.act(
                states[row], masks[row], np.random.default_rng(0), greedy=True
            )
            assert actions[row] == action
            assert log_probs[row] == pytest.approx(logp)

    def test_act_batch_sampling_never_picks_masked_action(self):
        policy = self.make()
        rng = np.random.default_rng(7)
        # Only the middle action is valid: zero-probability prefix and
        # suffix are exactly the inverse-CDF edge cases.
        masks = np.tile(np.array([False, True, False]), (8, 1))
        states = rng.normal(size=(8, 4))
        for _ in range(50):
            actions, log_probs = policy.act_batch(states, masks, rng, greedy=False)
            assert np.all(actions == 1)
            assert np.all(log_probs == pytest.approx(0.0))

    def test_act_batch_sampling_requires_rng(self):
        policy = self.make()
        with pytest.raises(ValueError):
            policy.act_batch(np.zeros((1, 4)), None, rng=None, greedy=False)


def train_agent(agent, episodes=300, batch=8, seed=0):
    rng = np.random.default_rng(seed)
    rewards = []
    batch_trajectories = []
    for _ in range(episodes):
        env = CorridorEnv()
        trajectory = rollout(env, agent.act, rng)
        rewards.append(trajectory.total_reward)
        batch_trajectories.append(trajectory)
        if len(batch_trajectories) >= batch:
            agent.update(batch_trajectories)
            batch_trajectories = []
    return rewards


class TestReinforce:
    def test_solves_corridor(self):
        agent = ReinforceAgent(
            5, 3, np.random.default_rng(0),
            ReinforceConfig(hidden=(32,), lr=5e-3, entropy_coef=5e-3),
        )
        rewards = train_agent(agent, episodes=400)
        assert np.mean(rewards[-50:]) > 0.9
        assert np.mean(rewards[-50:]) > np.mean(rewards[:50])

    def test_update_requires_trajectories(self):
        agent = ReinforceAgent(5, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            agent.update([])

    def test_update_reports_metrics(self):
        agent = ReinforceAgent(5, 3, np.random.default_rng(0))
        env = CorridorEnv()
        t = rollout(env, agent.act, np.random.default_rng(1))
        metrics = agent.update([t])
        assert set(metrics) >= {"policy_loss", "value_loss", "mean_return", "n_steps"}
        assert metrics["n_steps"] == len(t)


class TestPPO:
    def test_solves_corridor(self):
        agent = PPOAgent(
            5, 3, np.random.default_rng(0),
            PPOConfig(hidden=(32,), lr=3e-3, epochs=3, entropy_coef=5e-3),
        )
        rewards = train_agent(agent, episodes=400)
        assert np.mean(rewards[-50:]) > 0.9

    def test_clipping_bounds_update(self):
        """With a huge advantage, the clipped objective must not explode."""
        agent = PPOAgent(5, 3, np.random.default_rng(0), PPOConfig(hidden=(16,)))
        state = np.zeros(5)
        mask = np.ones(3, dtype=bool)
        probs_before = agent.policy.probabilities(state, np.atleast_2d(mask))[0]
        t = Trajectory(
            transitions=[Transition(state, mask, 0, 1000.0, np.log(probs_before[0]))]
        )
        agent.update([t])
        probs_after = agent.policy.probabilities(state, np.atleast_2d(mask))[0]
        # one update cannot move the policy arbitrarily far
        assert probs_after[0] < 0.99

    def test_update_reports_metrics(self):
        agent = PPOAgent(5, 3, np.random.default_rng(0))
        env = CorridorEnv()
        t = rollout(env, agent.act, np.random.default_rng(1))
        metrics = agent.update([t])
        assert metrics["n_steps"] == len(t)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.5)
        assert s(0) == s(100) == 0.5

    def test_linear(self):
        s = LinearSchedule(1.0, 0.0, 10)
        assert s(0) == 1.0
        assert s(5) == pytest.approx(0.5)
        assert s(10) == s(20) == 0.0

    def test_linear_bad_horizon(self):
        with pytest.raises(ValueError):
            LinearSchedule(1.0, 0.0, 0)

    def test_exponential(self):
        s = ExponentialSchedule(1.0, 0.5, end=0.1)
        assert s(0) == 1.0
        assert s(1) == 0.5
        assert s(10) == 0.1

    def test_exponential_bad_decay(self):
        with pytest.raises(ValueError):
            ExponentialSchedule(1.0, 1.5)
