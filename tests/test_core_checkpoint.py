"""Tests for repro.core.checkpoint."""

import numpy as np
import pytest

from repro.core.checkpoint import load_agent, load_log, save_agent, save_log
from repro.core.lfd import LfDAgent
from repro.core.trainer import EpisodeRecord, TrainingLog
from repro.rl.ppo import PPOAgent
from repro.rl.reinforce import ReinforceAgent


@pytest.mark.parametrize(
    "cls,kind",
    [(PPOAgent, "ppo"), (ReinforceAgent, "reinforce")],
    ids=["ppo", "reinforce"],
)
class TestPolicyAgentCheckpoint:
    def test_roundtrip_preserves_policy(self, tmp_path, cls, kind):
        rng = np.random.default_rng(0)
        agent = cls(10, 6, rng)
        path = save_agent(agent, tmp_path / kind)
        loaded = load_agent(path)
        x = np.random.default_rng(1).normal(size=(4, 10))
        assert np.allclose(agent.policy_net.forward(x), loaded.policy_net.forward(x))
        assert np.allclose(agent.value_net.forward(x), loaded.value_net.forward(x))

    def test_loaded_agent_acts_identically(self, tmp_path, cls, kind):
        rng = np.random.default_rng(2)
        agent = cls(10, 6, rng)
        loaded = load_agent(save_agent(agent, tmp_path / kind))
        state = np.ones(10)
        mask = np.array([True, False, True, True, False, True])
        a1, _ = agent.act(state, mask, np.random.default_rng(3), greedy=True)
        a2, _ = loaded.act(state, mask, np.random.default_rng(3), greedy=True)
        assert a1 == a2

    def test_loaded_agent_trainable(self, tmp_path, cls, kind):
        from repro.rl.env import Trajectory, Transition

        agent = cls(10, 6, np.random.default_rng(4))
        loaded = load_agent(save_agent(agent, tmp_path / kind))
        t = Trajectory(
            transitions=[
                Transition(np.ones(10), np.ones(6, bool), 2, 1.0, -1.0),
            ]
        )
        metrics = loaded.update([t])
        assert np.isfinite(metrics["policy_loss"])


class TestLfDCheckpoint:
    def test_roundtrip(self, tmp_path):
        agent = LfDAgent(8, 5, np.random.default_rng(0))
        loaded = load_agent(save_agent(agent, tmp_path / "lfd"))
        x = np.random.default_rng(1).normal(size=(3, 8))
        assert np.allclose(
            agent.predicted_log_latency(x), loaded.predicted_log_latency(x)
        )
        assert loaded.n_actions == 5


class TestUnknownAgent:
    def test_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_agent(object(), tmp_path)


class TestLogCheckpoint:
    def make_log(self):
        log = TrainingLog()
        log.append(
            EpisodeRecord(1, "q1", 0.5, 100.0, 80.0, None, None, False)
        )
        log.append(
            EpisodeRecord(2, "q2", -1.0, 300.0, 100.0, 12.5, 10.0, True)
        )
        return log

    def test_roundtrip(self, tmp_path):
        log = self.make_log()
        loaded = load_log(save_log(log, tmp_path / "log.json"))
        assert len(loaded) == 2
        assert loaded.records[0].query_name == "q1"
        assert loaded.records[1].timed_out
        assert list(loaded.relative_costs()) == list(log.relative_costs())
        assert loaded.records[1].relative_latency == pytest.approx(1.25)

    def test_empty_log(self, tmp_path):
        loaded = load_log(save_log(TrainingLog(), tmp_path / "empty.json"))
        assert len(loaded) == 0
