"""Tests for repro.core.checkpoint."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    load_agent,
    load_log,
    save_agent,
    save_log,
    schema_fingerprint,
)
from repro.core.lfd import LfDAgent
from repro.core.trainer import EpisodeRecord, TrainingLog
from repro.rl.ppo import PPOAgent
from repro.rl.reinforce import ReinforceAgent


@pytest.mark.parametrize(
    "cls,kind",
    [(PPOAgent, "ppo"), (ReinforceAgent, "reinforce")],
    ids=["ppo", "reinforce"],
)
class TestPolicyAgentCheckpoint:
    def test_roundtrip_preserves_policy(self, tmp_path, cls, kind):
        rng = np.random.default_rng(0)
        agent = cls(10, 6, rng)
        path = save_agent(agent, tmp_path / kind)
        loaded = load_agent(path)
        x = np.random.default_rng(1).normal(size=(4, 10))
        assert np.allclose(agent.policy_net.forward(x), loaded.policy_net.forward(x))
        assert np.allclose(agent.value_net.forward(x), loaded.value_net.forward(x))

    def test_loaded_agent_acts_identically(self, tmp_path, cls, kind):
        rng = np.random.default_rng(2)
        agent = cls(10, 6, rng)
        loaded = load_agent(save_agent(agent, tmp_path / kind))
        state = np.ones(10)
        mask = np.array([True, False, True, True, False, True])
        a1, _ = agent.act(state, mask, np.random.default_rng(3), greedy=True)
        a2, _ = loaded.act(state, mask, np.random.default_rng(3), greedy=True)
        assert a1 == a2

    def test_loaded_agent_trainable(self, tmp_path, cls, kind):
        from repro.rl.env import Trajectory, Transition

        agent = cls(10, 6, np.random.default_rng(4))
        loaded = load_agent(save_agent(agent, tmp_path / kind))
        t = Trajectory(
            transitions=[
                Transition(np.ones(10), np.ones(6, bool), 2, 1.0, -1.0),
            ]
        )
        metrics = loaded.update([t])
        assert np.isfinite(metrics["policy_loss"])


class TestLfDCheckpoint:
    def test_roundtrip(self, tmp_path):
        agent = LfDAgent(8, 5, np.random.default_rng(0))
        loaded = load_agent(save_agent(agent, tmp_path / "lfd"))
        x = np.random.default_rng(1).normal(size=(3, 8))
        assert np.allclose(
            agent.predicted_log_latency(x), loaded.predicted_log_latency(x)
        )
        assert loaded.n_actions == 5


class TestUnknownAgent:
    def test_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_agent(object(), tmp_path)


class TestLogCheckpoint:
    def make_log(self):
        log = TrainingLog()
        log.append(
            EpisodeRecord(1, "q1", 0.5, 100.0, 80.0, None, None, False)
        )
        log.append(
            EpisodeRecord(2, "q2", -1.0, 300.0, 100.0, 12.5, 10.0, True)
        )
        return log

    def test_roundtrip(self, tmp_path):
        log = self.make_log()
        loaded = load_log(save_log(log, tmp_path / "log.json"))
        assert len(loaded) == 2
        assert loaded.records[0].query_name == "q1"
        assert loaded.records[1].timed_out
        assert list(loaded.relative_costs()) == list(log.relative_costs())
        assert loaded.records[1].relative_latency == pytest.approx(1.25)

    def test_empty_log(self, tmp_path):
        loaded = load_log(save_log(TrainingLog(), tmp_path / "empty.json"))
        assert len(loaded) == 0


class TestStatisticsStamping:
    """Checkpoints carry the database's statistics epoch and schema
    fingerprint; loads against a moved-on database draw an audit."""

    def test_save_stamps_epoch_schema_and_version(self, tmp_path, fresh_small_db):
        import json

        db = fresh_small_db
        agent = PPOAgent(10, 6, np.random.default_rng(0))
        path = save_agent(agent, tmp_path / "stamped", db=db, policy_version=7)
        meta = json.loads((path / "meta.json").read_text())
        assert meta["stats_epoch"] == db.stats_epoch
        assert meta["schema_fingerprint"] == schema_fingerprint(db.schema)
        assert meta["policy_version"] == 7

    def test_schema_fingerprint_is_stable_and_discriminating(self, small_db, medium_db):
        assert schema_fingerprint(small_db.schema) == schema_fingerprint(
            small_db.schema
        )
        assert schema_fingerprint(small_db.schema) != schema_fingerprint(
            medium_db.schema
        )

    def test_fresh_load_draws_no_audit(self, tmp_path, fresh_small_db):
        from repro.obs import EventLog, MetricsRegistry

        db = fresh_small_db
        agent = PPOAgent(10, 6, np.random.default_rng(0))
        path = save_agent(agent, tmp_path / "fresh", db=db)
        events, registry = EventLog(), MetricsRegistry()
        loaded = load_agent(path, db=db, events=events, registry=registry)
        assert events.of_kind("checkpoint_stale") == []
        assert registry.snapshot().get("repro_checkpoint_stale_loads_total", 0) == 0
        assert loaded.checkpoint_meta["stats_epoch"] == db.stats_epoch

    def test_stale_epoch_warns_on_load(self, tmp_path, fresh_small_db):
        from repro.obs import EventLog, MetricsRegistry

        db = fresh_small_db
        agent = PPOAgent(10, 6, np.random.default_rng(0))
        path = save_agent(agent, tmp_path / "stale", db=db, policy_version=3)
        db.bump_stats_epoch()
        events, registry = EventLog(), MetricsRegistry()
        load_agent(path, db=db, events=events, registry=registry)
        (event,) = events.of_kind("checkpoint_stale")
        assert event["reason"] == "stats_epoch_behind"
        assert event["saved_epoch"] == db.stats_epoch - 1
        assert event["current_epoch"] == db.stats_epoch
        assert event["policy_version"] == 3
        assert registry.snapshot()["repro_checkpoint_stale_loads_total"] == 1

    def test_unstamped_checkpoint_warns_on_load(self, tmp_path, fresh_small_db):
        from repro.obs import EventLog

        db = fresh_small_db
        agent = PPOAgent(10, 6, np.random.default_rng(0))
        path = save_agent(agent, tmp_path / "unstamped")  # no db: no stamp
        events = EventLog()
        load_agent(path, db=db, events=events)
        (event,) = events.of_kind("checkpoint_stale")
        assert event["reason"] == "unstamped"

    def test_schema_change_warns_on_load(self, tmp_path, medium_db, fresh_small_db):
        from repro.obs import EventLog

        db = fresh_small_db
        agent = PPOAgent(10, 6, np.random.default_rng(0))
        path = save_agent(agent, tmp_path / "moved", db=db)
        events = EventLog()
        load_agent(path, db=medium_db, events=events)
        (event,) = events.of_kind("checkpoint_stale")
        assert event["reason"] == "schema_changed"

    def test_load_without_db_skips_audit(self, tmp_path, fresh_small_db):
        db = fresh_small_db
        agent = PPOAgent(10, 6, np.random.default_rng(0))
        path = save_agent(agent, tmp_path / "quiet", db=db)
        loaded = load_agent(path)  # no db: nothing to audit against
        assert loaded.checkpoint_meta["schema_fingerprint"]
