"""Parity tests for the incremental episode encoder.

The encoder exists purely for speed: every vector and mask it produces
must be bitwise-identical to what the stateless
``QueryFeaturizer.featurize``/``pair_mask`` pair would compute on the
same forest. These tests drive random episodes and compare after every
join.
"""

import numpy as np
import pytest

from repro.core.featurize import QueryFeaturizer, SlotState
from repro.workloads.generator import RandomQueryGenerator


@pytest.fixture()
def gen(small_db):
    return RandomQueryGenerator(small_db)


def random_episode_states(db, gen, rng, n_relations, forbid):
    """Yield (encoder, reference SlotState) pairs stepping one episode
    with random valid actions, comparing after every join."""
    query = gen.generate(rng, n_relations, name=f"par-{n_relations}")
    featurizer = QueryFeaturizer(db.schema, max_relations=max(n_relations, 2))
    cards = db.cardinalities(query)
    state = featurizer.encoder(SlotState(query, featurizer.max_relations), cards)
    reference = SlotState(query, featurizer.max_relations)
    return featurizer, cards, state, reference


class TestEncoderParity:
    @pytest.mark.parametrize("forbid", [True, False])
    @pytest.mark.parametrize("n_relations", [2, 3, 4, 6])
    def test_vector_and_mask_bitwise_equal_all_episode(
        self, small_db, gen, rng, n_relations, forbid
    ):
        featurizer, cards, encoder, reference = random_episode_states(
            small_db, gen, rng, n_relations, forbid
        )
        while True:
            expected_vec = featurizer.featurize(reference, cards)
            expected_mask = featurizer.pair_mask(reference, forbid)
            got_vec = encoder.vector()
            got_mask = encoder.pair_mask(forbid)
            assert np.array_equal(expected_vec, got_vec)
            assert (expected_vec == got_vec).all()  # bitwise, incl. -0.0 etc.
            assert np.array_equal(expected_mask, got_mask)
            if reference.done:
                break
            valid = np.nonzero(expected_mask)[0]
            action = int(valid[int(rng.integers(len(valid)))])
            i, j = featurizer.decode_pair(action)
            encoder.join(i, j)
            reference.join(i, j)

    def test_vector_is_fresh_array_each_call(self, small_db, gen, rng):
        featurizer, cards, encoder, _ = random_episode_states(
            small_db, gen, rng, 3, True
        )
        first = encoder.vector()
        second = encoder.vector()
        assert first is not second
        second[:] = -1.0
        assert not np.array_equal(first, second)

    def test_join_keeps_state_and_connectivity_in_sync(self, small_db, gen, rng):
        featurizer, cards, encoder, reference = random_episode_states(
            small_db, gen, rng, 4, True
        )
        state = encoder.state
        while not state.done:
            mask = encoder.pair_mask(True)
            valid = np.nonzero(mask)[0]
            i, j = featurizer.decode_pair(int(valid[0]))
            merged = encoder.join(i, j)
            assert state.slots[min(i, j)] is merged
            # connectivity matches the ground-truth predicate check
            for a in state.occupied:
                for b in state.occupied:
                    if a != b:
                        assert encoder._conn[a, b] == state.connected(a, b)

    def test_without_cardinalities(self, small_db, gen, rng):
        query = gen.generate(rng, 3, name="nocards")
        featurizer = QueryFeaturizer(small_db.schema, max_relations=3)
        encoder = featurizer.encoder(SlotState(query, 3), None)
        reference = SlotState(query, 3)
        assert np.array_equal(
            featurizer.featurize(reference, None), encoder.vector()
        )
