"""Tests for learning from demonstration (paper §5.1)."""

import numpy as np
import pytest

from repro.core import (
    DemonstrationSet,
    ExpertBaseline,
    JoinOrderEnv,
    LfDAgent,
    LfDConfig,
    LfDTrainer,
)
from repro.core.lfd import _picked_mse
from repro.core.rewards import LatencyReward
from repro.db.query import parse_query
from repro.workloads.generator import Workload


@pytest.fixture(scope="module")
def lfd_setup(small_db):
    queries = [
        parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="chain",
        ),
        parse_query("SELECT * FROM b, c WHERE b.id = c.b_id", name="bc"),
        parse_query("SELECT * FROM a, b WHERE a.id = b.a_id AND b.z = 1", name="ab"),
    ]
    workload = Workload("lfd", queries)
    baseline = ExpertBaseline(small_db)
    env = JoinOrderEnv(
        small_db,
        workload,
        reward_source=LatencyReward(small_db, baseline=baseline),
        rng=np.random.default_rng(0),
    )
    return env, workload, baseline


class TestPickedMse:
    def test_loss_and_gradient(self):
        out = np.array([[1.0, 2.0], [3.0, 4.0]])
        actions = np.array([0, 1])
        targets = np.array([0.0, 4.0])
        loss, grad = _picked_mse(out, actions, targets)
        assert loss == pytest.approx(0.5)  # mean((1-0)^2, (4-4)^2)
        assert grad[0, 0] == pytest.approx(1.0)
        assert grad[0, 1] == 0.0
        assert grad[1, 1] == pytest.approx(0.0)


class TestDemonstrationCollection:
    def test_collect_histories(self, lfd_setup):
        env, workload, _ = lfd_setup
        demos = DemonstrationSet.collect(env, list(workload))
        assert len(demos) == 3
        for demo in demos:
            assert len(demo) == len(demo.states) == len(demo.masks)
            assert demo.latency_ms > 0
            assert not demo.timed_out  # the expert never times out

    def test_episode_history_lengths(self, lfd_setup):
        env, workload, _ = lfd_setup
        demos = DemonstrationSet.collect(env, list(workload))
        by_name = {d.query_name: d for d in demos}
        assert len(by_name["chain"]) == 2  # 3 relations -> 2 joins
        assert len(by_name["bc"]) == 1

    def test_flatten_shapes(self, lfd_setup):
        env, workload, _ = lfd_setup
        demos = DemonstrationSet.collect(env, list(workload))
        states, actions, targets = demos.flatten()
        assert len(states) == len(actions) == len(targets) == sum(len(d) for d in demos)

    def test_collect_requires_latency_reward(self, small_db, lfd_setup):
        _, workload, _ = lfd_setup
        cost_env = JoinOrderEnv(small_db, workload, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            DemonstrationSet.collect(cost_env, list(workload))


class TestLfDAgent:
    def test_act_prefers_low_predicted_latency(self, lfd_setup):
        env, _, _ = lfd_setup
        agent = LfDAgent(env.state_dim, env.n_actions, np.random.default_rng(0))
        state = np.zeros(env.state_dim)
        mask = np.zeros(env.n_actions, dtype=bool)
        mask[[2, 5]] = True
        q = agent.predicted_log_latency(state)[0]
        best = 2 if q[2] <= q[5] else 5
        action, _ = agent.act(state, mask, greedy=True)
        assert action == best

    def test_epsilon_exploration(self, lfd_setup):
        env, _, _ = lfd_setup
        config = LfDConfig(epsilon=1.0)  # always explore
        agent = LfDAgent(env.state_dim, env.n_actions, np.random.default_rng(0), config)
        mask = np.zeros(env.n_actions, dtype=bool)
        mask[[1, 3, 5]] = True
        actions = {
            agent.act(np.zeros(env.state_dim), mask)[0] for _ in range(30)
        }
        assert len(actions) > 1
        assert actions <= {1, 3, 5}

    def test_imitation_reduces_loss(self, lfd_setup):
        env, workload, baseline = lfd_setup
        demos = DemonstrationSet.collect(env, list(workload))
        agent = LfDAgent(
            env.state_dim, env.n_actions, np.random.default_rng(1),
            LfDConfig(imitation_epochs=30),
        )
        trainer = LfDTrainer(env, agent, demos, baseline, np.random.default_rng(2))
        losses = trainer.imitation_phase()
        assert np.mean(losses[-5:]) < np.mean(losses[:5])


class TestLfDTrainer:
    def test_fine_tune_runs_and_logs(self, lfd_setup):
        env, workload, baseline = lfd_setup
        demos = DemonstrationSet.collect(env, list(workload))
        agent = LfDAgent(
            env.state_dim, env.n_actions, np.random.default_rng(3),
            LfDConfig(imitation_epochs=15),
        )
        trainer = LfDTrainer(env, agent, demos, baseline, np.random.default_rng(4))
        trainer.imitation_phase()
        log = trainer.fine_tune(10)
        assert len(log) == 10
        assert all(r.latency_ms is not None for r in log.records)

    def test_imitated_agent_avoids_catastrophes(self, lfd_setup):
        """§5.1's headline property: phase-2 plans are never catastrophic."""
        env, workload, baseline = lfd_setup
        demos = DemonstrationSet.collect(env, list(workload))
        agent = LfDAgent(
            env.state_dim, env.n_actions, np.random.default_rng(5),
            LfDConfig(imitation_epochs=30, epsilon=0.0),
        )
        trainer = LfDTrainer(env, agent, demos, baseline, np.random.default_rng(6))
        trainer.imitation_phase()
        log = trainer.fine_tune(15)
        assert log.timeout_fraction() == 0.0

    def test_slip_triggers_retraining(self, lfd_setup):
        env, workload, baseline = lfd_setup
        demos = DemonstrationSet.collect(env, list(workload))
        config = LfDConfig(
            imitation_epochs=2, slip_threshold=0.0, slip_window=2, retrain_epochs=1
        )  # impossible threshold: every window triggers a retrain
        agent = LfDAgent(env.state_dim, env.n_actions, np.random.default_rng(7), config)
        trainer = LfDTrainer(env, agent, demos, baseline, np.random.default_rng(8))
        trainer.fine_tune(6)
        assert trainer.retrain_count >= 1
