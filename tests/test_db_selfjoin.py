"""Self-join (repeated table, distinct aliases) correctness tests.

JOB relies on self-joins (two ``info_type`` instances, linked movies
via two ``title`` instances); the executor must keep per-alias row ids
separate even when they reference the same base table.
"""

import numpy as np
import pytest

from repro.db.plans import HashJoin, MergeJoin, NestedLoopJoin, SeqScan
from repro.db.query import parse_query
from repro.optimizer.planner import Planner
from tests.helpers import brute_force_count


@pytest.fixture()
def self_join_query(small_db):
    q = parse_query(
        "SELECT * FROM b AS b1, b AS b2, c "
        "WHERE c.b_id = b1.id AND c.b_id = b2.id AND b1.z = 1 AND b2.z = 2",
        name="selfjoin",
    )
    q.validate_against(small_db.schema)
    return q


class TestSelfJoinExecution:
    def test_matches_brute_force(self, small_db, self_join_query):
        q = self_join_query
        plan = HashJoin(
            HashJoin(
                SeqScan("c", "c"),
                SeqScan("b1", "b", tuple(q.selections_for("b1"))),
                tuple(q.joins_between(["c"], ["b1"])),
            ),
            SeqScan("b2", "b", tuple(q.selections_for("b2"))),
            tuple(q.joins_between(["c", "b1"], ["b2"])),
        )
        result = small_db.execute_plan(plan, q)
        assert result.rows == brute_force_count(small_db, q)

    @pytest.mark.parametrize("cls", [HashJoin, MergeJoin, NestedLoopJoin])
    def test_two_aliases_same_table(self, small_db, cls):
        q = parse_query(
            "SELECT * FROM a AS a1, a AS a2 WHERE a1.id = a2.id AND a1.x < 3",
            name="aa",
        )
        plan = cls(
            SeqScan("a1", "a", tuple(q.selections_for("a1"))),
            SeqScan("a2", "a"),
            tuple(q.joins),
        )
        result = small_db.execute_plan(plan, q)
        assert result.rows == brute_force_count(small_db, q)

    def test_optimizer_handles_self_join(self, small_db, self_join_query):
        planner = Planner(small_db)
        result = planner.optimize(self_join_query)
        executed = small_db.execute_plan(result.plan, self_join_query)
        assert executed.rows == brute_force_count(small_db, self_join_query)

    def test_cardinality_estimates_distinct_per_alias(self, small_db, self_join_query):
        cards = small_db.cardinalities(self_join_query)
        # selections differ per alias -> estimates must differ
        r1 = cards.scan_rows("b1")
        r2 = cards.scan_rows("b2")
        assert r1 != small_db.tables["b"].n_rows  # selection applied
        assert r1 > 0 and r2 > 0

    def test_featurizer_shares_table_slot(self, small_db, self_join_query):
        from repro.core.featurize import QueryFeaturizer, SlotState

        featurizer = QueryFeaturizer(small_db.schema, max_relations=4)
        state = SlotState(self_join_query, 4)
        vec = featurizer.featurize(state)
        assert np.isfinite(vec).all()
        # joining the two b-aliases accumulates in one base-table slot
        from repro.db.plans import JoinTree

        merged = JoinTree.join(JoinTree.leaf("b1"), JoinTree.leaf("b2"))
        row = featurizer.subtree_vector(merged, self_join_query)
        b_slot = featurizer.table_index["b"]
        assert row[b_slot] == pytest.approx(1.0)  # 1/2 + 1/2

    def test_rejoin_env_episode_on_self_join(self, small_db, self_join_query):
        from repro.core import JoinOrderEnv
        from repro.rl.env import rollout
        from repro.workloads.generator import Workload

        env = JoinOrderEnv(
            small_db,
            Workload("sj", [self_join_query]),
            rng=np.random.default_rng(0),
        )
        rng = np.random.default_rng(1)

        def act(state, mask, rng_, greedy):
            return int(rng_.choice(np.nonzero(mask)[0])), 0.0

        trajectory = rollout(env, act, rng)
        assert trajectory.info["outcome"].cost > 0
