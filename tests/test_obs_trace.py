"""Tests for per-request tracing: span nesting, explicit-duration
recording, coverage accounting, serialization round-trips, seeded
sampling determinism, and the retained-trace ring buffer."""

import pytest

from repro.obs.trace import Span, Trace, TraceSampler, TraceStore


def fake_clock(times):
    """A controllable monotonic clock (seconds); pop-from-front."""
    state = {"i": -1}

    def clock():
        state["i"] = min(state["i"] + 1, len(times) - 1)
        return times[state["i"]]

    return clock


class TestTrace:
    def test_span_nesting_and_attrs(self):
        trace = Trace("request", trace_id="t1", attrs={"query": "q0"})
        serve = trace.start_span("serve", batch_size=4)
        lookup = trace.start_span("cache_lookup", parent=serve, hit=False)
        trace.end_span(lookup)
        trace.end_span(serve)
        trace.finish(source="policy")
        assert trace.root.attrs == {"query": "q0", "source": "policy"}
        assert [c.name for c in trace.root.children] == ["serve"]
        assert [c.name for c in serve.children] == ["cache_lookup"]
        assert lookup.attrs == {"hit": False}
        assert lookup.duration_ms is not None and lookup.duration_ms >= 0.0
        # Child spans start within the parent's window.
        assert lookup.start_ms >= serve.start_ms

    def test_context_manager_closes_on_exception(self):
        trace = Trace("request")
        with pytest.raises(RuntimeError):
            with trace.span("serve") as span:
                raise RuntimeError("boom")
        assert span.duration_ms is not None

    def test_record_back_computes_start(self):
        # queue_wait is timed elsewhere (submission stamp) and recorded
        # with an explicit duration.
        clock = fake_clock([0.0, 0.010])
        trace = Trace("request", clock=clock)
        span = trace.record("queue_wait", 4.0, reason="deadline")
        assert span.duration_ms == 4.0
        assert span.start_ms == pytest.approx(10.0 - 4.0)
        assert trace.root.children == [span]

    def test_stage_durations_sum_repeated_names(self):
        trace = Trace("request")
        trace.record("cache_lookup", 1.0)
        trace.record("cache_lookup", 2.0)
        trace.record("serve", 5.0)
        durations = trace.stage_durations()
        assert durations["cache_lookup"] == pytest.approx(3.0)
        assert durations["serve"] == pytest.approx(5.0)

    def test_coverage_is_root_children_over_total(self):
        clock = fake_clock([0.0, 0.100])
        trace = Trace("request", clock=clock)
        trace.record("queue_wait", 30.0)
        serve = trace.record("serve", 60.0)
        # Nested spans must NOT double-count into coverage.
        trace.record("cache_lookup", 59.0, parent=serve)
        total = trace.finish()
        assert total == pytest.approx(100.0)
        assert trace.coverage() == pytest.approx(0.9)

    def test_finish_is_idempotent(self):
        trace = Trace("request")
        first = trace.finish()
        assert trace.finish() == first

    def test_dict_round_trip_preserves_tree(self):
        trace = Trace("request", trace_id="42", sampled=False)
        serve = trace.start_span("serve", batch_size=2)
        trace.start_span("expert_dp", parent=serve, dp_subsets=17)
        for span in list(trace.root.walk())[1:]:
            trace.end_span(span)
        trace.finish(source="expert")
        clone = Trace.from_dict(trace.to_dict())
        assert clone.trace_id == "42"
        assert clone.sampled is False
        assert [s.name for s in clone.root.walk()] == [
            s.name for s in trace.root.walk()
        ]
        assert clone.root.children[0].children[0].attrs == {"dp_subsets": 17}
        # Serialization rounds offsets to 4 decimal places (0.1µs).
        assert clone.duration_ms == pytest.approx(trace.duration_ms, abs=1e-4)

    def test_format_renders_every_span(self):
        trace = Trace("request", trace_id="7", attrs={"shard": 1})
        serve = trace.record("serve", 3.0)
        trace.record("guardrail", 1.0, parent=serve, use_learned=True)
        trace.finish()
        text = trace.format()
        assert "trace 7" in text
        assert "serve" in text and "guardrail" in text
        assert "use_learned=True" in text
        assert "span coverage" in text


class TestTraceSampler:
    def test_edge_rates(self):
        assert all(TraceSampler(1.0).sample() for _ in range(20))
        assert not any(TraceSampler(0.0).sample() for _ in range(20))

    def test_seeded_determinism(self):
        first, second = TraceSampler(0.3, seed=9), TraceSampler(0.3, seed=9)
        a = [first.sample() for _ in range(200)]
        b = [second.sample() for _ in range(200)]
        assert a == b
        assert 0 < sum(a) < 200  # actually sampling, not a constant

    def test_different_seeds_differ(self):
        first, second = TraceSampler(0.5, seed=1), TraceSampler(0.5, seed=2)
        a = [first.sample() for _ in range(200)]
        b = [second.sample() for _ in range(200)]
        assert a != b

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            TraceSampler(1.5)


class TestTraceStore:
    def make_trace(self, trace_id, duration_ms):
        clock = fake_clock([0.0, duration_ms / 1000.0])
        trace = Trace("request", trace_id=trace_id, clock=clock)
        trace.finish()
        return trace

    def test_ring_evicts_oldest(self):
        store = TraceStore(capacity=2)
        for i in range(4):
            store.add(self.make_trace(str(i), float(i + 1)))
        assert store.retained == 4
        assert [t.trace_id for t in store.all()] == ["2", "3"]

    def test_slowest_orders_by_duration(self):
        store = TraceStore(capacity=8)
        for i, ms in enumerate([5.0, 50.0, 1.0, 20.0]):
            store.add(self.make_trace(str(i), ms))
        slowest = store.slowest(2)
        assert [t.trace_id for t in slowest] == ["1", "3"]

    def test_jsonl_round_trip(self, tmp_path):
        store = TraceStore()
        store.add(self.make_trace("a", 3.0))
        store.add(self.make_trace("b", 7.0))
        path = tmp_path / "traces.jsonl"
        assert store.write_jsonl(path) == 2
        back = TraceStore.read_jsonl(path)
        assert [t.trace_id for t in back] == ["a", "b"]
        assert back[1].duration_ms == pytest.approx(7.0)
