"""Tests for repro.nn.losses, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.losses import (
    entropy,
    masked_log_softmax,
    masked_softmax,
    mse_loss,
    policy_gradient_loss,
)

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


@st.composite
def logits_and_mask(draw):
    n = draw(st.integers(1, 4))
    k = draw(st.integers(1, 8))
    logits = draw(
        hnp.arrays(np.float64, (n, k), elements=finite_floats)
    )
    mask = draw(
        hnp.arrays(np.bool_, (n, k), elements=st.booleans()).filter(
            lambda m: m.any(axis=1).all()
        )
    )
    return logits, mask


class TestMaskedSoftmax:
    @given(logits_and_mask())
    @settings(max_examples=60, deadline=None)
    def test_rows_sum_to_one(self, lm):
        logits, mask = lm
        probs = masked_softmax(logits, mask)
        assert np.allclose(probs.sum(axis=1), 1.0)

    @given(logits_and_mask())
    @settings(max_examples=60, deadline=None)
    def test_masked_entries_are_zero(self, lm):
        logits, mask = lm
        probs = masked_softmax(logits, mask)
        assert np.all(probs[~mask] == 0.0)

    @given(logits_and_mask())
    @settings(max_examples=60, deadline=None)
    def test_log_softmax_consistent_with_softmax(self, lm):
        logits, mask = lm
        probs = masked_softmax(logits, mask)
        logp = masked_log_softmax(logits, mask)
        assert np.allclose(np.exp(logp[mask]), probs[mask], atol=1e-10)

    def test_no_mask_is_plain_softmax(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        probs = masked_softmax(logits)
        expected = np.exp(logits) / np.exp(logits).sum()
        assert np.allclose(probs, expected)

    def test_all_invalid_row_rejected(self):
        with pytest.raises(ValueError):
            masked_softmax(np.zeros((1, 3)), np.zeros((1, 3), dtype=bool))

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            masked_softmax(np.zeros((1, 3)), np.ones((1, 4), dtype=bool))

    def test_extreme_logits_stable(self):
        logits = np.array([[1000.0, -1000.0, 999.0]])
        probs = masked_softmax(logits)
        assert np.isfinite(probs).all()
        assert np.allclose(probs.sum(), 1.0)


class TestEntropy:
    def test_uniform_is_max(self):
        uniform = np.full((1, 4), 0.25)
        assert np.isclose(entropy(uniform)[0], np.log(4))

    def test_deterministic_is_zero(self):
        probs = np.array([[1.0, 0.0, 0.0]])
        assert np.isclose(entropy(probs)[0], 0.0)

    @given(logits_and_mask())
    @settings(max_examples=40, deadline=None)
    def test_entropy_nonnegative(self, lm):
        logits, mask = lm
        probs = masked_softmax(logits, mask)
        assert (entropy(probs) >= -1e-12).all()


class TestMSE:
    def test_zero_at_target(self):
        x = np.array([1.0, 2.0])
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        assert not grad.any()

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        _, grad = mse_loss(pred, target)
        eps = 1e-6
        for idx in np.ndindex(pred.shape):
            p = pred.copy()
            p[idx] += eps
            up, _ = mse_loss(p, target)
            p[idx] -= 2 * eps
            down, _ = mse_loss(p, target)
            assert np.isclose(grad[idx], (up - down) / (2 * eps), atol=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros(3), np.zeros(4))


class TestPolicyGradientLoss:
    def _numerical(self, logits, actions, advantages, mask, entropy_coef=0.0):
        eps = 1e-6
        grad = np.zeros_like(logits)
        for idx in np.ndindex(logits.shape):
            up = logits.copy()
            up[idx] += eps
            down = logits.copy()
            down[idx] -= eps
            lu, _ = policy_gradient_loss(up, actions, advantages, mask, entropy_coef)
            ld, _ = policy_gradient_loss(down, actions, advantages, mask, entropy_coef)
            grad[idx] = (lu - ld) / (2 * eps)
        return grad

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 5))
        actions = np.array([0, 2, 4])
        advantages = rng.normal(size=3)
        _, grad = policy_gradient_loss(logits, actions, advantages)
        num = self._numerical(logits, actions, advantages, None)
        assert np.allclose(grad, num, atol=1e-5)

    def test_gradient_with_mask_and_entropy(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(2, 4))
        mask = np.array([[True, True, False, True], [True, False, True, True]])
        actions = np.array([1, 2])
        advantages = np.array([0.5, -1.5])
        _, grad = policy_gradient_loss(logits, actions, advantages, mask, 0.01)
        num = self._numerical(logits, actions, advantages, mask, 0.01)
        assert np.allclose(grad, num, atol=1e-5)

    def test_masked_action_gradient_zero(self):
        logits = np.zeros((1, 3))
        mask = np.array([[True, True, False]])
        _, grad = policy_gradient_loss(logits, np.array([0]), np.array([1.0]), mask)
        assert grad[0, 2] == 0.0

    def test_positive_advantage_reinforces_action(self):
        logits = np.zeros((1, 3))
        _, grad = policy_gradient_loss(logits, np.array([1]), np.array([2.0]))
        # gradient descent step -grad increases the chosen logit
        assert grad[0, 1] < 0
        assert grad[0, 0] > 0 and grad[0, 2] > 0

    def test_invalid_action_index_rejected(self):
        with pytest.raises(ValueError):
            policy_gradient_loss(np.zeros((1, 3)), np.array([3]), np.array([1.0]))

    def test_taking_masked_action_rejected(self):
        mask = np.array([[True, False]])
        with pytest.raises(ValueError):
            policy_gradient_loss(np.zeros((1, 2)), np.array([1]), np.array([1.0]), mask)
