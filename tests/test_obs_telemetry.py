"""End-to-end telemetry tests: span trees built through the real
serving stack (front end -> flusher -> shard worker -> service), SLO
slow-query capture, seeded retention determinism, and the event
stream's integration points."""

import numpy as np
import pytest

from repro.core.featurize import QueryFeaturizer
from repro.db.query import parse_query
from repro.obs import Telemetry, TelemetryConfig, Trace, disabled
from repro.rl.ppo import PPOAgent
from repro.serving import (
    FrontEndConfig,
    OptimizerService,
    ServingConfig,
    ServingFrontEnd,
)

CHAIN = "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id"
BC = "SELECT * FROM b, c WHERE b.id = c.b_id"
AB = "SELECT * FROM a, b WHERE a.id = b.a_id"


@pytest.fixture(scope="module")
def featurizer(small_db):
    return QueryFeaturizer(small_db.schema, max_relations=3)


@pytest.fixture(scope="module")
def agent(small_db, featurizer):
    return PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(3)
    )


def make_frontend(small_db, agent, featurizer, telemetry, **serving_kwargs):
    serving_kwargs.setdefault("regression_threshold", 1.5)
    return ServingFrontEnd.build(
        small_db,
        agent,
        featurizer=featurizer,
        serving_config=ServingConfig(**serving_kwargs),
        config=FrontEndConfig(n_shards=2, max_batch=4, max_delay_ms=5.0),
        telemetry=telemetry,
    )


class TestFrontEndTracing:
    def test_span_tree_shape_and_attribute_integrity(
        self, small_db, agent, featurizer
    ):
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        frontend = make_frontend(small_db, agent, featurizer, telemetry)
        # Three distinct fingerprints: every request is a cold miss.
        queries = [
            parse_query(BC, "bc0"),
            parse_query(AB, "ab0"),
            parse_query(CHAIN, "chain0"),
        ]
        with frontend:
            served = [frontend.optimize(q, timeout=10.0) for q in queries]

        traces = telemetry.store.all()
        assert len(traces) == len(queries)
        by_query = {t.root.attrs["query"]: t for t in traces}
        assert set(by_query) == {q.name for q in queries}

        for query, plan in zip(queries, served):
            trace = by_query[query.name]
            root = trace.root
            assert root.name == "request"
            # Attribute integrity: the trace agrees with the served plan.
            assert root.attrs["source"] == plan.source
            assert root.attrs["fingerprint"] == plan.fingerprint
            assert root.attrs["shard"] in (0, 1)
            child_names = [c.name for c in root.children]
            assert child_names[:3] == ["queue_wait", "worker_queue", "serve"]
            serve = root.children[2]
            serve_names = [c.name for c in serve.children]
            assert serve_names[0] == "cache_lookup"
            assert serve.children[0].attrs["hit"] is False  # cold cache
            # A non-cache request ran the policy and the guardrail.
            assert "policy_forward" in serve_names
            assert "guardrail" in serve_names
            guardrail = serve.children[serve_names.index("guardrail")]
            assert isinstance(guardrail.attrs["use_learned"], bool)
            # Every span closed, with non-negative duration.
            for span in root.walk():
                assert span.duration_ms is not None
                assert span.duration_ms >= 0.0

    def test_span_sums_explain_the_end_to_end_latency(
        self, small_db, agent, featurizer
    ):
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        frontend = make_frontend(small_db, agent, featurizer, telemetry)
        with frontend:
            for i in range(4):
                frontend.optimize(parse_query(BC, f"cov{i}"), timeout=10.0)
        for trace in telemetry.store.all():
            assert trace.coverage() >= 0.9, trace.format()

    def test_cache_hit_is_visible_in_the_trace(
        self, small_db, agent, featurizer
    ):
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        frontend = make_frontend(small_db, agent, featurizer, telemetry)
        with frontend:
            frontend.optimize(parse_query(BC, "warm"), timeout=10.0)
            hit_plan = frontend.optimize(parse_query(BC, "warm"), timeout=10.0)
        assert hit_plan.source == "cache"
        trace = telemetry.store.all()[-1]
        serve = trace.root.children[2]
        assert serve.children[0].name == "cache_lookup"
        assert serve.children[0].attrs["hit"] is True
        # A cache hit never runs the policy.
        assert "policy_forward" not in [c.name for c in serve.children]

    def test_stage_histograms_feed_from_finished_traces(
        self, small_db, agent, featurizer
    ):
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        frontend = make_frontend(small_db, agent, featurizer, telemetry)
        with frontend:
            for i in range(3):
                frontend.optimize(parse_query(BC, f"h{i}"), timeout=10.0)
            registry = frontend.metrics_registry()
        assert registry.get("repro_request_e2e_ms").count == 3
        summary = telemetry.stage_summary()
        for stage in ("queue_wait", "worker_queue", "serve", "cache_lookup"):
            assert summary[stage]["count"] == 3.0

    def test_disabled_telemetry_records_nothing(
        self, small_db, agent, featurizer
    ):
        telemetry = disabled()
        assert telemetry.begin_trace("request") is None
        telemetry.finish_trace(None)  # None-safe
        frontend = make_frontend(small_db, agent, featurizer, telemetry)
        with frontend:
            plan = frontend.optimize(parse_query(BC, "dark"), timeout=10.0)
        assert plan.query_name == "dark"
        assert telemetry.store.all() == []
        assert len(telemetry.events) == 0


class TestSloCapture:
    def test_slo_violations_are_always_retained_with_events(
        self, small_db, agent, featurizer
    ):
        # sample_rate=0: head sampling keeps nothing, so every retained
        # trace below is tail-based SLO capture.
        telemetry = Telemetry(TelemetryConfig(sample_rate=0.0, slo_ms=0.0))
        frontend = make_frontend(small_db, agent, featurizer, telemetry)
        with frontend:
            frontend.optimize(parse_query(BC, "slow0"), timeout=10.0)
        traces = telemetry.store.all()
        assert len(traces) == 1
        assert traces[0].sampled is False  # kept by SLO, not the sampler
        slow = telemetry.slow_queries()
        assert len(slow) == 1
        assert slow[0]["trace_id"] == traces[0].trace_id
        assert slow[0]["latency_ms"] > 0.0
        # The embedded trace is a complete, reparseable span tree.
        embedded = Trace.from_dict(slow[0]["trace"])
        assert embedded.root.attrs["query"] == "slow0"
        assert [c.name for c in embedded.root.children][:3] == [
            "queue_wait", "worker_queue", "serve",
        ]

    def test_under_slo_unsampled_requests_are_dropped(
        self, small_db, agent, featurizer
    ):
        telemetry = Telemetry(TelemetryConfig(sample_rate=0.0, slo_ms=10_000.0))
        frontend = make_frontend(small_db, agent, featurizer, telemetry)
        with frontend:
            frontend.optimize(parse_query(BC, "fast0"), timeout=10.0)
        assert telemetry.store.all() == []
        assert telemetry.slow_queries() == []
        # ... but the request WAS traced and fed the histograms.
        assert telemetry.registry.get("repro_request_e2e_ms").count == 1


class TestRetentionDeterminism:
    def run_stream(self, seed):
        telemetry = Telemetry(
            TelemetryConfig(sample_rate=0.4, seed=seed, slo_ms=10_000.0)
        )
        kept = []
        for i in range(60):
            trace = telemetry.begin_trace("request", query=f"q{i}")
            telemetry.finish_trace(trace)
        return [t.root.attrs["query"] for t in telemetry.store.all()]

    def test_same_seed_retains_the_same_requests(self):
        first = self.run_stream(seed=7)
        assert first == self.run_stream(seed=7)
        assert 0 < len(first) < 60  # the sampler is actually sampling

    def test_different_seed_retains_differently(self):
        assert self.run_stream(seed=7) != self.run_stream(seed=8)


class TestServiceEvents:
    def make_service(self, small_db, agent, featurizer, telemetry, **kwargs):
        return OptimizerService(
            small_db,
            agent,
            featurizer=featurizer,
            config=ServingConfig(**kwargs),
            telemetry=telemetry,
        )

    def test_guardrail_fallback_emits_event_and_tags_trace(
        self, small_db, agent, featurizer
    ):
        # A vanishingly small threshold forces the learned plan to lose.
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        service = self.make_service(
            small_db, agent, featurizer, telemetry, regression_threshold=1e-9
        )
        plan = service.optimize(parse_query(CHAIN, "guarded"))
        assert plan.source == "fallback"
        events = telemetry.events.of_kind("guardrail_fallback")
        assert len(events) == 1
        assert events[0]["query"] == "guarded"
        assert events[0]["predicted_regression"] > 1e9 or (
            events[0]["predicted_regression"] > events[0]["threshold"]
        )
        trace = telemetry.store.all()[0]
        assert trace.root.attrs["fallback_reason"] == "predicted_regression"
        # The expert DP span nests under the guardrail decision.
        serve = trace.root.children[0]
        guardrail = [c for c in serve.children if c.name == "guardrail"][0]
        assert [c.name for c in guardrail.children] == ["expert_dp"]
        assert guardrail.children[0].attrs["dp_subsets"] > 0

    def test_statistics_invalidation_emits_event(
        self, small_db, agent, featurizer
    ):
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        service = self.make_service(small_db, agent, featurizer, telemetry)
        service.optimize(parse_query(BC, "pre"))
        service.invalidate_statistics_caches()
        service.invalidate_statistics_caches(tables=["b"])
        events = telemetry.events.of_kind("stats_invalidation")
        assert [e["scope"] for e in events] == ["all", "tables"]
        assert events[1]["tables"] == ["b"]
