"""Smoke tests: every example script compiles and exposes main().

Full example runs take minutes (they train agents); the unit suite
verifies they are importable and structurally sound, and runs the two
cheapest ones end-to-end at reduced scale via their main() guard.
"""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_has_main_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} missing a module docstring"
    functions = [n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]
    assert "main" in functions, f"{path.name} missing main()"
    # __main__ guard present
    assert any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    ), f"{path.name} missing __main__ guard"


def test_examples_exist_and_cover_the_deliverables():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    # at least two domain-specific scenarios beyond the quickstart
    assert len(names - {"quickstart"}) >= 2
