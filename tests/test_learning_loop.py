"""Tests for the hands-free learning loop: the adaptive guardrail fit,
the exact-DP eval gate, degraded-serve exclusion from replay, and the
retraining daemon's promote / reject / hot-swap / rollback lifecycle."""

import math
import time

import numpy as np
import pytest

from repro.core.featurize import QueryFeaturizer
from repro.core.rewards import ExpertBaseline
from repro.core.trainer import Trainer, TrainingConfig
from repro.db.query import parse_query
from repro.obs import Telemetry, TelemetryConfig
from repro.rl.env import Trajectory, Transition
from repro.rl.ppo import PPOAgent
from repro.serving import (
    AdaptiveGuardrail,
    EvalGate,
    ExperienceBuffer,
    FaultConfig,
    FaultInjector,
    FrontEndConfig,
    LearningConfig,
    RetrainingDaemon,
    ServingConfig,
    ServingFrontEnd,
    is_degraded,
)

CHAIN = "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id"
BC = "SELECT * FROM b, c WHERE b.id = c.b_id"
AB = "SELECT * FROM a, b WHERE a.id = b.a_id"
SQLS = (CHAIN, BC, AB)


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Adaptive guardrail
# ----------------------------------------------------------------------
class TestAdaptiveGuardrail:
    def test_too_few_pairs_returns_none(self):
        rail = AdaptiveGuardrail(min_pairs=4)
        for cost in (10.0, 20.0, 30.0):
            rail.add(cost, cost * 2)
        assert rail.fit() is None

    def test_recovers_known_power_law(self):
        # latency = cost^2 exactly → slope b = 2, threshold = 1.5^(1/2).
        rail = AdaptiveGuardrail(headroom=1.5, bounds=(1.05, 3.0), min_pairs=4)
        for cost in (10.0, 20.0, 40.0, 80.0, 160.0):
            rail.add(cost, cost**2)
        assert rail.fit() == pytest.approx(math.sqrt(1.5), rel=1e-6)

    def test_flat_slope_refuses_to_fit(self):
        # Latency independent of cost: cost predicts nothing.
        rail = AdaptiveGuardrail(min_pairs=4)
        for cost in (10.0, 20.0, 40.0, 80.0):
            rail.add(cost, 5.0)
        assert rail.fit() is None

    def test_identical_costs_refuse_to_fit(self):
        rail = AdaptiveGuardrail(min_pairs=2)
        for latency in (1.0, 2.0, 4.0, 8.0):
            rail.add(50.0, latency)
        assert rail.fit() is None

    def test_shallow_slope_clamps_to_upper_bound(self):
        # b = 0.1 → 1.5^10 ≈ 57, far past the cap.
        rail = AdaptiveGuardrail(headroom=1.5, bounds=(1.05, 3.0), min_pairs=4)
        for cost in (10.0, 100.0, 1000.0, 10000.0):
            rail.add(cost, cost**0.1)
        assert rail.fit() == pytest.approx(3.0)

    def test_nonpositive_observations_dropped(self):
        rail = AdaptiveGuardrail(min_pairs=2)
        rail.add(0.0, 5.0)
        rail.add(10.0, 0.0)
        rail.add(-1.0, -1.0)
        assert len(rail) == 0

    def test_headroom_must_exceed_one(self):
        with pytest.raises(ValueError):
            AdaptiveGuardrail(headroom=1.0)


# ----------------------------------------------------------------------
# Eval gate
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def featurizer(small_db):
    return QueryFeaturizer(small_db.schema, max_relations=3)


@pytest.fixture(scope="module")
def holdout():
    return [parse_query(sql) for sql in SQLS]


def fresh_agent(featurizer, seed=3):
    return PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(seed)
    )


class TestEvalGate:
    def make(self, small_db, featurizer, holdout, **kwargs):
        return EvalGate(
            small_db, featurizer, holdout, config=LearningConfig(**kwargs)
        )

    def test_empty_holdout_rejected(self, small_db, featurizer):
        single = [parse_query("SELECT * FROM a")]  # 1 relation: no join to plan
        with pytest.raises(ValueError):
            self.make(small_db, featurizer, single)

    def test_score_is_finite_and_at_least_oracle(
        self, small_db, featurizer, holdout
    ):
        gate = self.make(small_db, featurizer, holdout)
        agent = fresh_agent(featurizer)
        score, finite, per_query = gate.score(agent.policy)
        assert finite and math.isfinite(score)
        # The oracle is the exact DP minimum: no policy beats it.
        assert score >= 1.0 - 1e-9
        assert set(per_query) == {q.name for q in gate.holdout}

    def test_oracle_costs_cached_per_epoch(self, small_db, featurizer, holdout):
        gate = self.make(small_db, featurizer, holdout)
        first = gate.oracle_costs()
        assert gate.oracle_costs() is first

    def test_nan_policy_is_rejected_as_non_finite(
        self, small_db, featurizer, holdout
    ):
        gate = self.make(small_db, featurizer, holdout)
        agent = fresh_agent(featurizer)
        for param in agent.policy_net.net.params.values():
            param[...] = np.nan
        verdict = gate.judge(agent.policy, current_score=None)
        assert not verdict.promote
        assert verdict.reason == "non_finite_rollout"
        assert verdict.score == float("inf")

    def test_judge_within_budget_promotes(self, small_db, featurizer, holdout):
        gate = self.make(small_db, featurizer, holdout, gate_budget=100.0)
        verdict = gate.judge(fresh_agent(featurizer).policy, current_score=None)
        assert verdict.promote and verdict.reason == "within_budget"

    def test_judge_no_worse_than_serving(self, small_db, featurizer, holdout):
        gate = self.make(small_db, featurizer, holdout, gate_budget=1.0001)
        policy = fresh_agent(featurizer).policy
        score, _, _ = gate.score(policy)
        verdict = gate.judge(policy, current_score=score * 1.001)
        assert verdict.promote and verdict.reason == "no_worse_than_serving"

    def test_judge_rejects_regression(self, small_db, featurizer, holdout):
        gate = self.make(small_db, featurizer, holdout, gate_budget=1.0001)
        policy = fresh_agent(featurizer).policy
        score, _, _ = gate.score(policy)
        verdict = gate.judge(policy, current_score=score * 0.5)
        assert not verdict.promote
        assert verdict.reason == "regression_budget_exceeded"


# ----------------------------------------------------------------------
# Degraded serves never reach learning
# ----------------------------------------------------------------------
def make_trajectory(state_dim=4, n_actions=3, reward=1.0, info=None):
    from repro.core.rewards import PlanOutcome

    base = {
        "outcome": PlanOutcome(reward=reward, metric=10.0, cost=10.0),
        "query": parse_query(AB, "replayed"),
    }
    base.update(info or {})
    return Trajectory(
        transitions=[
            Transition(
                np.ones(state_dim), np.ones(n_actions, dtype=bool), 0, reward, -0.5
            )
        ],
        info=base,
    )


class TestDegradedExclusion:
    def test_is_degraded_reads_flag_and_source(self):
        assert is_degraded(make_trajectory(info={"degraded": True}))
        assert not is_degraded(make_trajectory(info={"degraded": False}))
        assert is_degraded(make_trajectory(info={"source": "degraded_cached"}))
        assert not is_degraded(make_trajectory(info={"source": "policy"}))
        assert not is_degraded(make_trajectory())

    def test_buffer_counts_degraded_tags(self):
        buffer = ExperienceBuffer(capacity=8)
        buffer.add(make_trajectory(info={"degraded": True}))
        buffer.add(make_trajectory(info={"source": "policy"}))
        assert buffer.degraded_tagged == 1
        assert buffer.as_dict()["experience_degraded_tagged"] == 1

    def test_replay_skips_degraded(self, small_db, featurizer):
        agent = fresh_agent(featurizer)
        trainer = Trainer(
            None,
            agent,
            ExpertBaseline(small_db),
            np.random.default_rng(5),
            TrainingConfig(batch_size=2),
        )
        dim, acts = featurizer.state_dim, featurizer.n_pair_actions
        before = {k: v.copy() for k, v in agent.policy_net.net.params.items()}
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        trainer.replay(
            [make_trajectory(dim, acts, info={"degraded": True}) for _ in range(4)],
            events=telemetry.events,
        )
        # Every trajectory was degraded: no update may happen.
        for key, value in agent.policy_net.net.params.items():
            assert np.array_equal(value, before[key])
        (event,) = telemetry.events.of_kind("retraining_replay")
        assert event["skipped_degraded"] == 4
        assert event["trajectories"] == 0
        assert event["weights_updated"] is False

    def test_replay_audit_mode_leaves_weights_alone(self, small_db, featurizer):
        agent = fresh_agent(featurizer)
        trainer = Trainer(
            None,
            agent,
            ExpertBaseline(small_db),
            np.random.default_rng(5),
            TrainingConfig(batch_size=2),
        )
        dim, acts = featurizer.state_dim, featurizer.n_pair_actions
        before = {k: v.copy() for k, v in agent.policy_net.net.params.items()}
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        trainer.replay(
            [make_trajectory(dim, acts) for _ in range(4)],
            update=False,
            events=telemetry.events,
        )
        for key, value in agent.policy_net.net.params.items():
            assert np.array_equal(value, before[key])
        (event,) = telemetry.events.of_kind("retraining_replay")
        assert event["trajectories"] == 4
        assert event["skipped_degraded"] == 0
        assert event["weights_updated"] is False
        assert math.isfinite(event["mean_reward"])

    def test_replay_event_payload_shape(self, small_db, featurizer):
        agent = fresh_agent(featurizer)
        trainer = Trainer(
            None,
            agent,
            ExpertBaseline(small_db),
            np.random.default_rng(5),
            TrainingConfig(batch_size=2),
        )
        dim, acts = featurizer.state_dim, featurizer.n_pair_actions
        telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
        mixed = [
            make_trajectory(dim, acts),
            make_trajectory(dim, acts, info={"degraded": True}),
            Trajectory(transitions=[], info={}),  # single-relation serve
        ]
        trainer.replay(mixed, events=telemetry.events)
        (event,) = telemetry.events.of_kind("retraining_replay")
        assert {
            "trajectories",
            "skipped",
            "skipped_degraded",
            "weights_updated",
            "mean_reward",
        } <= set(event)
        assert event["trajectories"] == 1
        assert event["skipped"] == 1
        assert event["skipped_degraded"] == 1
        assert event["weights_updated"] is True


# ----------------------------------------------------------------------
# Retraining daemon: promote / reject / swap / rollback / rejoin
# ----------------------------------------------------------------------
def make_loop(small_db, featurizer, seed=3, fault_injector=None, **config_kwargs):
    """A 2-shard front end plus a daemon wired for fast, deterministic
    cycles (one cleared-cache burst of the three fixture queries is one
    cycle's worth of traffic)."""
    agent = fresh_agent(featurizer, seed=seed)
    telemetry = Telemetry(TelemetryConfig(sample_rate=1.0, slo_ms=10_000.0))
    frontend = ServingFrontEnd.build(
        small_db,
        agent,
        featurizer=featurizer,
        serving_config=ServingConfig(regression_threshold=1.5),
        config=FrontEndConfig(
            n_shards=2, max_batch=4, max_delay_ms=5.0, supervisor_interval_s=0.02
        ),
        telemetry=telemetry,
    )
    trainer = Trainer(
        None,
        agent,
        ExpertBaseline(small_db),
        np.random.default_rng(seed + 1),
        TrainingConfig(batch_size=4),
    )
    config_kwargs.setdefault("retrain_every", 3)
    config_kwargs.setdefault("min_trajectories", 2)
    config_kwargs.setdefault("rollback_window", 6)
    daemon = RetrainingDaemon(
        frontend,
        trainer,
        [parse_query(sql) for sql in SQLS],
        config=LearningConfig(**config_kwargs),
        fault_injector=fault_injector,
    )
    return frontend, daemon, agent


def burst(frontend, tag, repeat=1):
    """Serve the three fixture shapes with cold caches so every request
    exercises the live policy (cache hits would insulate a bad swap)."""
    for service in frontend.services:
        service.cache.clear()
        service.router.invalidate()
    queries = [
        parse_query(sql, f"{tag}-{i}-{j}")
        for j in range(repeat)
        for i, sql in enumerate(SQLS)
    ]
    return frontend.optimize_batch(queries, timeout=10.0)


class TestRetrainingDaemon:
    def test_promotion_swaps_all_shards_and_stamps_serves(
        self, small_db, featurizer, tmp_path
    ):
        frontend, daemon, agent = make_loop(
            small_db, featurizer, gate_budget=100.0, checkpoint_dir=tmp_path
        )
        with frontend:
            served = burst(frontend, "warm")
            assert all(plan.policy_version == 1 for plan in served)
            status = daemon.maybe_run()
            assert status is not None and status["action"] == "promoted"
            assert daemon.version == 2
            assert all(s.policy_version == 2 for s in frontend.services)
            # Shard 1's deep-copied net received the same weights.
            x = np.random.default_rng(0).normal(size=(4, featurizer.state_dim))
            assert np.allclose(
                frontend.services[0].engine.policy.net.forward(x),
                frontend.services[1].engine.policy.net.forward(x),
            )
            served = burst(frontend, "after")
            assert all(plan.policy_version == 2 for plan in served)
            # Promotion checkpointed the new lineage, stamped with the
            # statistics epoch and version.
            meta = (tmp_path / "v2" / "meta.json").read_text()
            assert '"policy_version": 2' in meta
            assert '"stats_epoch"' in meta
        event_kinds = [e["kind"] for e in daemon.telemetry.events.tail(50)]
        assert "policy_swap" in event_kinds

    def test_below_cadence_does_not_cycle(self, small_db, featurizer):
        frontend, daemon, _ = make_loop(small_db, featurizer, retrain_every=1000)
        with frontend:
            burst(frontend, "few")
            assert daemon.maybe_run() is None
            assert daemon.cycles == 0

    def test_poisoned_update_is_rejected(self, small_db, featurizer):
        injector = FaultInjector(FaultConfig(replay_poison_rate=1.0, seed=1))
        frontend, daemon, agent = make_loop(
            small_db, featurizer, fault_injector=injector
        )
        before = {k: v.copy() for k, v in agent.policy_net.net.params.items()}
        with frontend:
            burst(frontend, "poison")
            status = daemon.maybe_run()
            assert status["action"] == "rejected"
            assert status["poisoned"] is True
            assert status["reason"] == "non_finite_weights"
            assert daemon.version == 1 and daemon.rejections == 1
            # Live weights never saw the poisoned candidate.
            for key, value in agent.policy_net.net.params.items():
                assert np.array_equal(value, before[key])
            (event,) = [
                e
                for e in daemon.telemetry.events.of_kind("policy_update_rejected")
            ]
            assert event["poisoned"] is True
        assert daemon.as_dict()["poisoned_cycles"] == 1

    def test_replay_blowup_rejects_candidate(self, small_db, featurizer):
        frontend, daemon, _ = make_loop(small_db, featurizer)

        class Boom(Exception):
            pass

        def exploding_replay(*args, **kwargs):
            raise Boom("poisoned batch")

        with frontend:
            burst(frontend, "boom")
            daemon_trainer = daemon.trainer

            class ExplodingTrainer(type(daemon_trainer)):
                def replay(self, *args, **kwargs):
                    raise Boom("poisoned batch")

            daemon.trainer.__class__ = ExplodingTrainer
            status = daemon.run_cycle()
            assert status["action"] == "rejected"
            assert status["reason"].startswith("replay_failed")
            assert daemon.version == 1

    def test_forced_bad_swap_rolls_back_and_restores_weights(
        self, small_db, featurizer
    ):
        frontend, daemon, agent = make_loop(small_db, featurizer, rollback_window=6)
        with frontend:
            burst(frontend, "warm")
            good = {k: v.copy() for k, v in agent.policy_net.net.params.items()}
            bad = agent.policy_net.clone(np.random.default_rng(9))
            for param in bad.net.params.values():
                param[...] = np.nan
            daemon.force_swap(bad)
            bad_version = daemon.version
            rolled = None
            for i in range(8):
                burst(frontend, f"storm{i}")
                rolled = daemon.check_rollback()
                if rolled:
                    break
            assert rolled is not None, "bad swap was never rolled back"
            assert rolled["from_version"] == bad_version
            assert rolled["new_version"] == bad_version + 1  # versions only go forward
            assert daemon.rollbacks == 1
            for key, value in agent.policy_net.net.params.items():
                assert np.allclose(value, good[key])
            assert all(
                s.policy_version == bad_version + 1 for s in frontend.services
            )
            # The loop settles: healthy traffic does not re-trigger.
            burst(frontend, "calm")
            burst(frontend, "calm2")
            assert daemon.check_rollback() is None
            assert daemon.rollbacks == 1
        kinds = [e["kind"] for e in daemon.telemetry.events.tail(100)]
        assert "policy_rollback" in kinds

    def test_respawned_shard_rejoins_at_current_version(
        self, small_db, featurizer
    ):
        frontend, daemon, agent = make_loop(small_db, featurizer, gate_budget=100.0)
        with frontend:
            burst(frontend, "warm")
            assert daemon.maybe_run()["action"] == "promoted"
            assert daemon.version == 2
            restarts = frontend.stats.worker_restarts
            frontend.kill_worker(1)
            assert wait_until(
                lambda: frontend.stats.worker_restarts > restarts
            )
            assert wait_until(
                lambda: frontend.services[1].policy_version == 2
            )
            x = np.random.default_rng(0).normal(size=(4, featurizer.state_dim))
            assert np.allclose(
                frontend.services[1].engine.policy.net.forward(x),
                agent.policy_net.forward(x),
            )
            served = burst(frontend, "rejoined")
            assert all(plan.policy_version == 2 for plan in served)
        kinds = [e["kind"] for e in daemon.telemetry.events.tail(100)]
        assert "policy_sync" in kinds

    def test_metrics_surface(self, small_db, featurizer):
        frontend, daemon, _ = make_loop(small_db, featurizer, gate_budget=100.0)
        with frontend:
            burst(frontend, "warm")
            daemon.maybe_run()
            snapshot = frontend.metrics_registry().snapshot()
        assert snapshot["repro_policy_version"] == daemon.version
        assert snapshot["repro_learning_cycles_total"] == 1
        assert snapshot["repro_learning_promotions_total"] >= 1
        assert snapshot["repro_learning_rejections_total"] == 0
        assert snapshot["repro_learning_rollbacks_total"] == 0
        hist = snapshot["repro_learning_retrain_ms"]
        assert hist["count"] == 1
        assert "repro_experience_degraded_tagged_total" in snapshot

    def test_background_thread_runs_cycles(self, small_db, featurizer):
        frontend, daemon, _ = make_loop(
            small_db, featurizer, gate_budget=100.0, poll_interval_s=0.01
        )
        with frontend:
            daemon.start()
            try:
                burst(frontend, "bg")
                assert wait_until(lambda: daemon.cycles >= 1)
            finally:
                daemon.stop()
        assert daemon.version >= 1

    def test_attempt_one_only_collection_under_retries(
        self, small_db, featurizer
    ):
        # PR 6's retry path re-serves a failed submission; experience
        # collection must stay tied to attempt 1 so a retried request
        # can never double-count (or post-fault count) a trajectory.
        frontend, daemon, _ = make_loop(small_db, featurizer)
        collect_log = []
        for service in frontend.services:
            original = service.optimize_batch

            def spy(queries, *args, _orig=original, **kwargs):
                collect_log.append(list(kwargs.get("collect", [])))
                return _orig(queries, *args, **kwargs)

            service.optimize_batch = spy
        injector = FaultInjector(FaultConfig(worker_fault_rate=0.4, seed=11))
        frontend.install_fault_injector(injector)
        with frontend:
            for service in frontend.services:
                service.cache.clear()
                service.router.invalidate()
            queries = [
                parse_query(sql, f"retry-{i}-{j}")
                for j in range(4)
                for i, sql in enumerate(SQLS)
            ]
            futures = [frontend.submit(q) for q in queries]
            served = 0
            for future in futures:
                try:
                    future.result(timeout=10.0)
                    served += 1
                except Exception:
                    pass  # a request may exhaust its retries; fine here
            assert served >= 1
        flat = [flag for call in collect_log for flag in call]
        assert len(flat) >= served
        # Retried attempts (the calls beyond the first batch wave) must
        # carry collect=False; every first attempt collects.
        retried_calls = sum(1 for call in collect_log if not all(call))
        if frontend.stats.retries:
            assert retried_calls >= 1
        # At most one trajectory per unique served request ever lands in
        # the buffers, faults and retries notwithstanding.
        drained = frontend.drain_experience()
        assert len(drained) <= len(queries)
        names = [t.info.get("query").name for t in drained if t.info.get("query")]
        assert len(names) == len(set(names))
