"""Tests for repro.core.rewards."""

import math

import pytest

from repro.core.bootstrap import RewardScaler
from repro.core.rewards import (
    CostModelReward,
    ExpertBaseline,
    LatencyReward,
    ScaledLatencyReward,
    shape_metric,
)
from repro.db.plans import HashJoin, NestedLoopJoin, SeqScan
from repro.db.query import parse_query


@pytest.fixture()
def join_query(small_db):
    q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="jq")
    q.validate_against(small_db.schema)
    return q


def good_plan(query):
    return HashJoin(SeqScan("a", "a"), SeqScan("b", "b"), tuple(query.joins))


def bad_plan(query):
    return NestedLoopJoin(SeqScan("a", "a"), SeqScan("b", "b"), ())


class TestShaping:
    def test_reciprocal_is_paper_formula(self):
        assert shape_metric(4.0, "reciprocal") == pytest.approx(0.25)

    def test_neg_log(self):
        assert shape_metric(math.e, "neg_log") == pytest.approx(-1.0)

    def test_relative_zero_at_expert(self):
        assert shape_metric(10.0, "relative", expert_metric=10.0) == pytest.approx(0.0)

    def test_relative_positive_when_better(self):
        assert shape_metric(5.0, "relative", expert_metric=10.0) > 0

    def test_relative_requires_expert(self):
        with pytest.raises(ValueError):
            shape_metric(5.0, "relative")

    def test_all_shapings_monotone(self):
        for shaping in ("reciprocal", "neg_log"):
            a = shape_metric(10.0, shaping)
            b = shape_metric(100.0, shaping)
            assert a > b  # lower metric => higher reward

    def test_unknown_shaping(self):
        with pytest.raises(ValueError):
            shape_metric(1.0, "square")


class TestExpertBaseline:
    def test_cost_cached(self, small_db, join_query):
        baseline = ExpertBaseline(small_db)
        c1 = baseline.cost(join_query)
        c2 = baseline.cost(join_query)
        assert c1 == c2 > 0

    def test_latency_positive(self, small_db, join_query):
        baseline = ExpertBaseline(small_db)
        assert baseline.latency(join_query) > 0


class TestCostModelReward:
    def test_better_plan_higher_reward(self, small_db, join_query):
        reward = CostModelReward(small_db)
        good = reward.evaluate(good_plan(join_query), join_query)
        bad = reward.evaluate(bad_plan(join_query), join_query)
        assert good.reward > bad.reward
        assert not good.executed

    def test_relative_needs_baseline(self, small_db):
        with pytest.raises(ValueError):
            CostModelReward(small_db, shaping="relative")

    def test_relative_shaping(self, small_db, join_query):
        baseline = ExpertBaseline(small_db)
        reward = CostModelReward(small_db, "relative", baseline)
        outcome = reward.evaluate(good_plan(join_query), join_query)
        assert outcome.cost is not None


class TestLatencyReward:
    def test_executes_and_reports_latency(self, small_db, join_query):
        reward = LatencyReward(small_db)
        outcome = reward.evaluate(good_plan(join_query), join_query)
        assert outcome.executed
        assert outcome.latency_ms is not None and outcome.latency_ms > 0
        assert not outcome.timed_out

    def test_budget_censors_catastrophic(self, small_db):
        q = parse_query("SELECT * FROM a, b, c", name="cross3")
        plan = NestedLoopJoin(
            NestedLoopJoin(SeqScan("a", "a"), SeqScan("b", "b"), ()),
            SeqScan("c", "c"),
            (),
        )
        reward = LatencyReward(small_db, budget_factor=2.0, min_budget_ms=0.1)
        outcome = reward.evaluate(plan, q)
        assert outcome.timed_out
        assert outcome.latency_ms == reward.budget_for(q)

    def test_bad_budget_factor(self, small_db):
        with pytest.raises(ValueError):
            LatencyReward(small_db, budget_factor=1.0)

    def test_timed_out_reward_below_good(self, small_db, join_query):
        reward = LatencyReward(small_db, budget_factor=2.0, min_budget_ms=0.1)
        good = reward.evaluate(good_plan(join_query), join_query)
        q = parse_query("SELECT * FROM a, c", name="x")
        cross = NestedLoopJoin(SeqScan("a", "a"), SeqScan("c", "c"), ())
        bad = reward.evaluate(cross, q)
        assert good.reward > bad.reward


class TestRewardScaler:
    def test_paper_formula(self):
        scaler = RewardScaler().fit([10, 50], [100, 200])
        # r_l = Cmin + (l - Lmin)/(Lmax - Lmin) * (Cmax - Cmin)
        assert scaler.scale(100) == pytest.approx(10)
        assert scaler.scale(200) == pytest.approx(50)
        assert scaler.scale(150) == pytest.approx(30)

    def test_extrapolates_monotonically(self):
        scaler = RewardScaler().fit([10, 50], [100, 200])
        assert scaler.scale(400) > scaler.scale(200)

    def test_degenerate_latency_range(self):
        scaler = RewardScaler().fit([10, 50], [100, 100])
        assert scaler.scale(123) == 10

    def test_unfitted_rejects(self):
        with pytest.raises(RuntimeError):
            RewardScaler().scale(1.0)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            RewardScaler().fit([], [])
        with pytest.raises(ValueError):
            RewardScaler().fit([1.0], [1.0, 2.0])


class TestScaledLatencyReward:
    def test_scaled_metric_in_cost_units(self, small_db, join_query):
        latency = LatencyReward(small_db)
        scaler = RewardScaler().fit([100, 1000], [1, 50])
        reward = ScaledLatencyReward(latency, scaler)
        outcome = reward.evaluate(good_plan(join_query), join_query)
        assert outcome.executed
        # metric must be the scaled value, not raw latency
        assert outcome.metric == pytest.approx(scaler.scale(outcome.latency_ms))

    def test_scale_continuity_with_cost_phase(self, small_db, join_query):
        """The scaled phase-2 reward must live in the same numeric range
        as the phase-1 cost reward — the whole point of §5.2."""
        cost_reward = CostModelReward(small_db)
        phase1 = cost_reward.evaluate(good_plan(join_query), join_query)
        latency = LatencyReward(small_db)
        lat = latency.evaluate(good_plan(join_query), join_query)
        scaler = RewardScaler().fit(
            [phase1.cost * 0.8, phase1.cost * 1.2],
            [lat.latency_ms * 0.8, lat.latency_ms * 1.2],
        )
        phase2 = ScaledLatencyReward(latency, scaler).evaluate(
            good_plan(join_query), join_query
        )
        assert abs(phase2.reward - phase1.reward) < abs(
            shape_metric(lat.latency_ms, "neg_log") - phase1.reward
        )
