"""Tests for repro.core.trainer and repro.core.reporting."""

import numpy as np
import pytest

from repro.core import (
    ExpertBaseline,
    JoinOrderEnv,
    Trainer,
    TrainingConfig,
    make_agent,
)
from repro.core.reporting import (
    ascii_table,
    bucket_means,
    convergence_episode,
    format_series,
    geometric_mean,
    moving_average,
)
from repro.core.trainer import EpisodeRecord, TrainingLog
from repro.db.query import parse_query
from repro.workloads.generator import Workload


class TestReporting:
    def test_moving_average_window(self):
        avg = moving_average([1, 2, 3, 4], window=2)
        assert list(avg) == [1.0, 1.5, 2.5, 3.5]

    def test_moving_average_prefix(self):
        avg = moving_average([2, 4, 6], window=10)
        assert list(avg) == [2.0, 3.0, 4.0]

    def test_moving_average_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_bucket_means(self):
        series = bucket_means([1, 1, 3, 3, 5], bucket_size=2)
        assert series == [(2, 1.0), (4, 3.0), (5, 5.0)]

    def test_convergence_episode(self):
        values = [10.0] * 10 + [1.0] * 20
        ep = convergence_episode(values, threshold=1.5, window=5)
        assert ep is not None
        assert 10 <= ep <= 20

    def test_convergence_never(self):
        assert convergence_episode([10.0] * 30, 1.0, window=5) is None

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [["x", 1.5], ["longer", 22.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "-" in lines[1]

    def test_format_series(self):
        text = format_series([(100, 5.0), (200, 1.0)])
        assert "100" in text and "5.00" in text


def make_record(episode, cost, expert_cost, latency=None, expert_latency=None, timed_out=False):
    return EpisodeRecord(
        episode=episode,
        query_name=f"q{episode}",
        reward=0.0,
        cost=cost,
        expert_cost=expert_cost,
        latency_ms=latency,
        expert_latency_ms=expert_latency,
        timed_out=timed_out,
    )


class TestTrainingLog:
    def test_relative_cost(self):
        log = TrainingLog()
        log.append(make_record(1, 200.0, 100.0))
        log.append(make_record(2, 100.0, 100.0))
        assert list(log.relative_costs()) == [2.0, 1.0]

    def test_relative_latency(self):
        log = TrainingLog()
        log.append(make_record(1, 1.0, 1.0, latency=50.0, expert_latency=25.0))
        assert list(log.relative_latencies()) == [2.0]

    def test_timeout_fraction(self):
        log = TrainingLog()
        log.append(make_record(1, 1.0, 1.0, timed_out=True))
        log.append(make_record(2, 1.0, 1.0))
        assert log.timeout_fraction() == 0.5
        assert log.timeout_fraction(first_n=1) == 1.0

    def test_series_and_convergence(self):
        log = TrainingLog()
        for i in range(20):
            cost = 1000.0 if i < 10 else 100.0
            log.append(make_record(i, cost, 100.0))
        series = log.relative_cost_series(bucket_size=10)
        assert series[0][1] == pytest.approx(10.0)
        assert series[1][1] == pytest.approx(1.0)
        assert log.converged_at(threshold=1.5, window=5) is not None

    def test_tail_mean(self):
        log = TrainingLog()
        for i in range(10):
            log.append(make_record(i, 100.0 * (i + 1), 100.0))
        assert log.tail_mean_relative_cost(tail=2) == pytest.approx(9.5)

    def test_tail_mean_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingLog().tail_mean_relative_cost()


@pytest.fixture(scope="module")
def tiny_setup(small_db):
    queries = [
        parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="chain",
        ),
        parse_query("SELECT * FROM b, c WHERE b.id = c.b_id", name="bc"),
    ]
    workload = Workload("tiny", queries)
    rng = np.random.default_rng(0)
    env = JoinOrderEnv(small_db, workload, rng=rng)
    agent = make_agent(env, rng, "reinforce")
    baseline = ExpertBaseline(small_db)
    trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=4))
    return trainer, workload


class TestTrainer:
    def test_run_produces_records(self, tiny_setup):
        trainer, workload = tiny_setup
        log = trainer.run(12)
        assert len(log) == 12
        assert all(r.cost is not None for r in log.records)
        assert all(r.expert_cost and r.expert_cost > 0 for r in log.records)

    def test_log_appending(self, tiny_setup):
        trainer, _ = tiny_setup
        log = trainer.run(4)
        log = trainer.run(4, log=log)
        assert len(log) == 8
        episodes = [r.episode for r in log.records]
        assert episodes == sorted(episodes)

    def test_evaluate_greedy_deterministic(self, tiny_setup):
        trainer, workload = tiny_setup
        r1 = trainer.evaluate(list(workload))
        r2 = trainer.evaluate(list(workload))
        assert set(r1) == {"chain", "bc"}
        for name in r1:
            assert r1[name].cost == r2[name].cost

    def test_no_update_mode(self, tiny_setup):
        """update=False must leave the policy untouched (pure evaluation)."""
        trainer, workload = tiny_setup
        weights_before = trainer.agent.policy_net.output_layer.weight.copy()
        trainer.run(6, update=False)
        assert np.array_equal(
            weights_before, trainer.agent.policy_net.output_layer.weight
        )
