"""Tests for the MLP facade: training, surgery, transfer, persistence."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.nn.losses import mse_loss, policy_gradient_loss


def make_mlp(out=3, seed=0, **kw):
    return MLP(4, [16, 16], out, rng=np.random.default_rng(seed), **kw)


class TestTraining:
    def test_learns_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = rng.normal(size=(4, 1))
        x = rng.normal(size=(256, 4))
        y = x @ true_w
        model = MLP(4, [32], 1, rng=rng, lr=5e-3)
        losses = []
        for _ in range(400):
            idx = rng.integers(0, 256, size=32)
            loss = model.train_step(x[idx], lambda out, t=y[idx]: mse_loss(out, t))
            losses.append(loss)
        assert np.mean(losses[-20:]) < 0.05 * np.mean(losses[:20])

    def test_learns_classification_via_policy_gradient(self):
        # Supervised classification expressed as PG with advantage=1:
        # maximizing log-prob of the correct label.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 4))
        labels = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = MLP(4, [32], 2, rng=rng, lr=1e-2)
        for _ in range(300):
            idx = rng.integers(0, 300, size=64)
            model.train_step(
                x[idx],
                lambda out, a=labels[idx]: policy_gradient_loss(
                    out, a, np.ones(len(a))
                ),
            )
        preds = model.forward(x).argmax(axis=1)
        assert (preds == labels).mean() > 0.9

    def test_tanh_activation_supported(self):
        model = make_mlp(activation="tanh")
        assert model.forward(np.zeros(4)).shape == (1, 3)

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            make_mlp(activation="gelu")


class TestSurgery:
    def test_grow_outputs_preserves_old_logits(self):
        model = make_mlp(out=3)
        x = np.random.default_rng(2).normal(size=(5, 4))
        before = model.forward(x).copy()
        model.grow_outputs(2, np.random.default_rng(3))
        after = model.forward(x)
        assert after.shape == (5, 5)
        assert np.allclose(after[:, :3], before)
        assert model.out_features == 5

    def test_training_continues_after_growth(self):
        rng = np.random.default_rng(4)
        model = make_mlp(out=2, seed=4)
        model.train_step(rng.normal(size=(8, 4)), lambda o: mse_loss(o, np.zeros((8, 2))))
        model.grow_outputs(3, rng)
        loss = model.train_step(
            rng.normal(size=(8, 4)), lambda o: mse_loss(o, np.zeros((8, 5)))
        )
        assert np.isfinite(loss)


class TestTransfer:
    def test_copy_all_matching(self):
        a = make_mlp(seed=5)
        b = make_mlp(seed=6)
        b.copy_weights_from(a)
        x = np.random.default_rng(7).normal(size=(3, 4))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_copy_hidden_layers_only(self):
        # Transfer-learning variant of §5.2: same trunk, new head size.
        a = make_mlp(out=3, seed=8)
        b = make_mlp(out=7, seed=9)
        b.copy_weights_from(a, layers=[0, 1])
        assert np.allclose(
            a.linear_layers()[0].weight, b.linear_layers()[0].weight
        )
        assert b.linear_layers()[2].weight.shape == (16, 7)

    def test_mismatched_explicit_layer_raises(self):
        a = make_mlp(out=3, seed=10)
        b = make_mlp(out=7, seed=11)
        with pytest.raises(ValueError):
            b.copy_weights_from(a, layers=[-1])


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        model = make_mlp(seed=12)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = MLP.load(path)
        x = np.random.default_rng(13).normal(size=(6, 4))
        assert np.allclose(model.forward(x), loaded.forward(x))
        assert loaded.hidden == model.hidden
        assert loaded.activation == model.activation

    def test_clone_identical_but_independent(self):
        model = make_mlp(seed=14)
        twin = model.clone()
        x = np.random.default_rng(15).normal(size=(2, 4))
        assert np.allclose(model.forward(x), twin.forward(x))
        twin.train_step(x, lambda o: mse_loss(o, np.zeros((2, 3))))
        assert not np.allclose(model.forward(x), twin.forward(x))
