"""Tests for repro.db.schema."""

import pytest

from repro.db.schema import (
    Column,
    DatabaseSchema,
    DataType,
    ForeignKey,
    TableSchema,
)


def make_schema():
    t1 = TableSchema("users", (Column("id"), Column("age")), primary_key="id")
    t2 = TableSchema(
        "orders", (Column("id"), Column("user_id"), Column("total", DataType.FLOAT)),
        primary_key="id",
    )
    return DatabaseSchema(
        tables={"users": t1, "orders": t2},
        foreign_keys=[ForeignKey("orders", "user_id", "users", "id")],
    )


class TestColumn:
    def test_valid(self):
        col = Column("name", DataType.STR)
        assert col.dtype.numpy_dtype == "int64"

    def test_float_numpy_dtype(self):
        assert DataType.FLOAT.numpy_dtype == "float64"

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Column("bad name")


class TestTableSchema:
    def test_column_lookup(self):
        t = TableSchema("t", (Column("a"), Column("b")))
        assert t.column("a").name == "a"
        assert t.has_column("b")
        assert not t.has_column("c")
        with pytest.raises(KeyError):
            t.column("c")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", (Column("a"), Column("a")))

    def test_bad_primary_key_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", (Column("a"),), primary_key="nope")

    def test_row_width(self):
        t = TableSchema("t", (Column("a"), Column("b")))
        assert t.row_width_bytes == 8 * 2 + 24


class TestDatabaseSchema:
    def test_join_graph(self):
        schema = make_schema()
        g = schema.join_graph()
        assert set(g.nodes) == {"users", "orders"}
        assert g.has_edge("users", "orders")
        assert len(g.edges["users", "orders"]["fks"]) == 1

    def test_fk_validation(self):
        with pytest.raises(KeyError):
            DatabaseSchema(
                tables={},
                foreign_keys=[ForeignKey("a", "x", "b", "y")],
            )

    def test_fk_unknown_column(self):
        t = TableSchema("t", (Column("a"),))
        with pytest.raises(KeyError):
            DatabaseSchema(
                tables={"t": t},
                foreign_keys=[ForeignKey("t", "missing", "t", "a")],
            )

    def test_add_table_duplicate(self):
        schema = make_schema()
        with pytest.raises(ValueError):
            schema.add_table(TableSchema("users", (Column("id"),)))

    def test_is_foreign_key_pair_both_directions(self):
        schema = make_schema()
        assert schema.is_foreign_key_pair("orders", "user_id", "users", "id")
        assert schema.is_foreign_key_pair("users", "id", "orders", "user_id")
        assert not schema.is_foreign_key_pair("users", "age", "orders", "id")

    def test_foreign_keys_between(self):
        schema = make_schema()
        assert len(schema.foreign_keys_between("users", "orders")) == 1
        assert schema.foreign_keys_between("users", "users") == []

    def test_all_columns_deterministic(self):
        schema = make_schema()
        cols = list(schema.all_columns())
        assert cols[0][0] == "orders"  # sorted by table name
        assert [c.name for t, c in cols if t == "users"] == ["id", "age"]

    def test_column_accessor(self):
        schema = make_schema()
        assert schema.column("users", "age").name == "age"
        with pytest.raises(KeyError):
            schema.column("nope", "age")
