"""Tests for the Database facade."""

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.plans import HashJoin, SeqScan
from repro.db.query import parse_query
from tests.conftest import small_fks, small_specs


class TestConstruction:
    def test_from_specs_builds_everything(self, small_db):
        assert small_db.n_tables == 3
        assert small_db.total_rows() == 80 + 200 + 400
        assert small_db.stats["a"].n_rows == 80
        # PKs and FK endpoints are indexed
        assert small_db.index_on("a", "id") is not None
        assert small_db.index_on("b", "a_id") is not None
        assert small_db.index_on("b", "a_id", kind="hash") is not None
        assert small_db.index_on("a", "x") is None

    def test_deterministic_given_seed(self):
        db1 = Database.from_specs(small_specs(), small_fks(), seed=3)
        db2 = Database.from_specs(small_specs(), small_fks(), seed=3)
        assert np.array_equal(db1.tables["b"].column("a_id"), db2.tables["b"].column("a_id"))

    def test_different_seeds_differ(self):
        db1 = Database.from_specs(small_specs(), small_fks(), seed=3)
        db2 = Database.from_specs(small_specs(), small_fks(), seed=4)
        assert not np.array_equal(
            db1.tables["b"].column("a_id"), db2.tables["b"].column("a_id")
        )

    def test_indexed_columns(self, small_db):
        assert "id" in small_db.indexed_columns("a")
        assert "a_id" in small_db.indexed_columns("b")

    def test_unknown_index_kind(self, small_db):
        with pytest.raises(ValueError):
            small_db.index_on("a", "id", kind="gist")


class TestServices:
    def test_plan_cost_and_execution_agree_on_rows_shape(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="svc")
        plan = HashJoin(
            SeqScan("a", "a"), SeqScan("b", "b"), tuple(q.joins)
        )
        cost = small_db.plan_cost(plan, q)
        result = small_db.execute_plan(plan, q)
        assert cost.total > 0
        assert result.rows > 0

    def test_explain_analyze_text(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="ea")
        plan = HashJoin(SeqScan("a", "a"), SeqScan("b", "b"), tuple(q.joins))
        text = small_db.explain_analyze(plan, q)
        assert "latency=" in text
        assert "est_rows=" in text
        assert "actual_rows=" in text
        assert "HashJoin" in text

    def test_explain_analyze_timeout_marker(self, small_db):
        from repro.db.plans import NestedLoopJoin

        q = parse_query("SELECT * FROM a, c", name="to")
        plan = NestedLoopJoin(SeqScan("a", "a"), SeqScan("c", "c"), ())
        text = small_db.explain_analyze(plan, q, budget_ms=0.001)
        assert "BUDGET EXCEEDED" in text

    def test_analyze_refreshes_stats(self, small_db):
        before = small_db.stats["a"].columns["x"].n_distinct
        small_db.analyze(seed=99)
        after = small_db.stats["a"].columns["x"].n_distinct
        assert after == pytest.approx(before, rel=0.5)

    def test_partial_analyze_touches_only_named_tables(self):
        from tests.conftest import small_fks, small_specs

        db = Database.from_specs(small_specs(), small_fks(), seed=7)
        epoch = db.stats_epoch
        a_epoch = db.table_epochs["a"]
        b_stats, c_stats = db.stats["b"], db.stats["c"]
        db.analyze(seed=99, tables=["a"])
        # Only a's statistics object was replaced...
        assert db.stats["b"] is b_stats
        assert db.stats["c"] is c_stats
        # ...and only a's epoch moved, while the global epoch still bumps
        # so epoch-only consumers stay conservative.
        assert db.table_epochs["a"] == a_epoch + 1
        assert db.table_epochs["b"] == db.table_epochs["c"] == a_epoch
        assert db.stats_epoch == epoch + 1

    def test_partial_analyze_rejects_unknown_table(self, small_db):
        with pytest.raises(KeyError, match="nope"):
            small_db.analyze(tables=["nope"])
