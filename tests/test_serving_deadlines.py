"""Tests for per-request deadlines, admission control, and lifecycle
hardening: queue/serve/drain expiry stages, backoff-vs-deadline
interaction, load shedding, and ServiceClosed semantics."""

import threading
import time

import numpy as np
import pytest

from repro.core.featurize import QueryFeaturizer
from repro.db.query import parse_query
from repro.rl.ppo import PPOAgent
from repro.serving import (
    DeadlineExceeded,
    FaultConfig,
    FaultInjector,
    FrontEndConfig,
    LoadShedded,
    ServiceClosed,
    ServingConfig,
    ServingFrontEnd,
)

BC = "SELECT * FROM b, c WHERE b.id = c.b_id"


@pytest.fixture(scope="module")
def featurizer(small_db):
    return QueryFeaturizer(small_db.schema, max_relations=3)


@pytest.fixture(scope="module")
def agent(small_db, featurizer):
    return PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(3)
    )


def make_frontend(small_db, agent, featurizer, **config_kwargs):
    config_kwargs.setdefault("n_shards", 1)
    config_kwargs.setdefault("max_batch", 4)
    config_kwargs.setdefault("max_delay_ms", 5.0)
    return ServingFrontEnd.build(
        small_db,
        agent,
        featurizer=featurizer,
        serving_config=ServingConfig(regression_threshold=1.5),
        config=FrontEndConfig(**config_kwargs),
    )


def stall_services(frontend, release: threading.Event, sleep_s=0.05):
    """Wrap every shard service's optimize_batch to wait on an event
    (bounded by repeated short sleeps so tests cannot hang forever)."""
    for service in frontend.services:
        original = service.optimize_batch

        def stalled(*args, _original=original, **kwargs):
            deadline = time.monotonic() + 10.0
            while not release.is_set() and time.monotonic() < deadline:
                time.sleep(sleep_s)
            return _original(*args, **kwargs)

        service.optimize_batch = stalled


class TestDeadlines:
    def test_expires_mid_queue_fail_fast(self, small_db, agent, featurizer):
        # max_delay far beyond the deadline: the flusher must wake at
        # the head's deadline (fail-fast), not after the full delay.
        frontend = make_frontend(
            small_db, agent, featurizer, max_batch=64, max_delay_ms=5000.0
        )
        with frontend:
            # Pre-expired relative to the flush that will carry it.
            start = time.monotonic()
            future = frontend.submit(parse_query(BC, "hurried"), deadline_ms=30.0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                future.result(timeout=5.0)
            elapsed = time.monotonic() - start
        assert excinfo.value.stage == "queue"
        assert elapsed < 2.0  # nowhere near the 5s flush delay
        assert frontend.stats.deadline_expired == 1
        assert frontend._outstanding == set()

    def test_expires_mid_serve_at_worker_pickup(self, small_db, agent, featurizer):
        # One shard, one-at-a-time batches: a slow serve in front makes
        # the second request's budget expire while it waits in the
        # worker queue; the worker detects it at pickup (stage="serve").
        frontend = make_frontend(
            small_db, agent, featurizer, n_shards=1, max_batch=1, max_delay_ms=1.0
        )
        release = threading.Event()
        stall_services(frontend, release)
        try:
            with frontend:
                slow = frontend.submit(parse_query(BC, "slow"))
                hurried = frontend.submit(
                    parse_query(BC, "hurried"), deadline_ms=60.0
                )
                time.sleep(0.15)  # let the deadline lapse mid-stall
                release.set()
                assert slow.result(timeout=5.0).cost > 0
                with pytest.raises(DeadlineExceeded) as excinfo:
                    hurried.result(timeout=5.0)
            assert excinfo.value.stage == "serve"
        finally:
            release.set()
        assert frontend._outstanding == set()

    def test_drain_force_expires_overdue(self, small_db, agent, featurizer):
        frontend = make_frontend(
            small_db, agent, featurizer, n_shards=1, max_batch=1, max_delay_ms=1.0
        )
        release = threading.Event()
        stall_services(frontend, release)
        try:
            with frontend:
                stuck = frontend.submit(
                    parse_query(BC, "stuck"), deadline_ms=80.0
                )
                # drain() must not wait for the stalled worker: it wakes
                # at the request deadline and force-expires it.
                frontend.drain(timeout=5.0)
                assert stuck.done()
                with pytest.raises(DeadlineExceeded) as excinfo:
                    stuck.result()
                assert excinfo.value.stage == "drain"
        finally:
            release.set()
        frontend.close()
        assert frontend._outstanding == set()

    def test_backoff_overshooting_deadline_fails_structured(
        self, small_db, agent, featurizer
    ):
        # 100% fault rate + a backoff longer than the remaining budget:
        # instead of sleeping past the deadline, fail now.
        frontend = make_frontend(
            small_db,
            agent,
            featurizer,
            max_attempts=3,
            backoff_base_ms=500.0,
            backoff_cap_ms=500.0,
        )
        frontend.install_fault_injector(
            FaultInjector(FaultConfig(worker_fault_rate=1.0, seed=9))
        )
        with frontend:
            future = frontend.submit(parse_query(BC, "q"), deadline_ms=100.0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                future.result(timeout=5.0)
        assert excinfo.value.stage == "queue"
        assert frontend.stats.retries == 0  # the retry was never scheduled
        assert frontend._outstanding == set()

    def test_no_deadline_means_no_expiry(self, small_db, agent, featurizer):
        frontend = make_frontend(small_db, agent, featurizer)
        with frontend:
            assert frontend.optimize(parse_query(BC, "calm"), timeout=5.0).cost > 0
        assert frontend.stats.deadline_expired == 0

    def test_bad_deadline_rejected(self, small_db, agent, featurizer):
        frontend = make_frontend(small_db, agent, featurizer)
        with frontend:
            with pytest.raises(ValueError):
                frontend.submit(parse_query(BC, "q"), deadline_ms=0)


class TestAdmissionControl:
    def test_load_shed_past_watermark(self, small_db, agent, featurizer):
        frontend = make_frontend(
            small_db,
            agent,
            featurizer,
            n_shards=1,
            max_pending=2,
            shed_watermark=1.0,
            max_delay_ms=1.0,
            max_batch=1,
        )
        release = threading.Event()
        stall_services(frontend, release)
        try:
            with frontend:
                accepted = [
                    frontend.submit(parse_query(BC, f"q{i}")) for i in range(2)
                ]
                with pytest.raises(LoadShedded) as excinfo:
                    frontend.submit(parse_query(BC, "shed"))
                assert excinfo.value.retry_after_s > 0
                assert "backpressure" in str(excinfo.value)
                release.set()
                for future in accepted:
                    assert future.result(timeout=5.0).cost > 0
        finally:
            release.set()
        assert frontend.stats.load_shed == 1
        assert frontend.stats.rejected == 1

    def test_load_shedded_is_a_runtime_error(self):
        # Callers predating the typed hierarchy catch RuntimeError.
        assert issubclass(LoadShedded, RuntimeError)
        assert issubclass(ServiceClosed, RuntimeError)


class TestServiceClosed:
    def test_late_submit_raises_service_closed(self, small_db, agent, featurizer):
        frontend = make_frontend(small_db, agent, featurizer)
        frontend.close()
        with pytest.raises(ServiceClosed, match="close"):
            frontend.submit(parse_query(BC, "late"))

    def test_close_sweeps_parked_retries(self, small_db, agent, featurizer):
        # A request parked in a long retry backoff when close() lands
        # must resolve with ServiceClosed, not dangle.
        frontend = make_frontend(
            small_db,
            agent,
            featurizer,
            max_attempts=3,
            backoff_base_ms=60_000.0,
            backoff_cap_ms=60_000.0,
        )
        frontend.install_fault_injector(
            FaultInjector(FaultConfig(worker_fault_rate=1.0, seed=13))
        )
        future = frontend.submit(parse_query(BC, "parked"))
        # Wait until the first attempt failed and the retry timer is armed.
        deadline = time.monotonic() + 5.0
        while not frontend._timers and time.monotonic() < deadline:
            time.sleep(0.01)
        frontend.close(timeout=5.0)
        with pytest.raises(ServiceClosed):
            future.result(timeout=1.0)
        assert frontend._outstanding == set()
        assert frontend._timers == {}
