"""Sub-plan cost memo: bitwise-equal costs, counters, and sharing.

The memo's contract is strict: a hit must return exactly what uncached
evaluation would have produced — same plan structure, bit-identical
``PlanCost`` — because training rewards and guardrail decisions are
derived from these numbers.
"""

import numpy as np
import pytest

from repro.core.rewards import CostModelReward
from repro.db.plans import JoinTree
from repro.optimizer.join_search import random_join_tree
from repro.optimizer.memo import SubPlanCostMemo, tree_keys
from repro.optimizer.planner import Planner
from repro.workloads.generator import RandomQueryGenerator


@pytest.fixture()
def gen(small_db):
    return RandomQueryGenerator(small_db)


def random_trees(query, rng, count):
    return [random_join_tree(query, rng) for _ in range(count)]


class TestTreeKeys:
    def test_same_tree_same_keys(self, small_db, gen, rng):
        query = gen.generate(rng, 4, name="k1")
        tree = random_join_tree(query, rng)
        keys_a = tree_keys(tree, query)
        keys_b = tree_keys(tree, query)
        assert keys_a[1] == keys_b[1]
        assert set(keys_a[0].values()) == set(keys_b[0].values())

    def test_different_trees_different_root_keys(self, small_db, gen):
        rng = np.random.default_rng(1)
        query = gen.generate(rng, 5, name="k2")
        roots = {tree_keys(t, query)[1] for t in random_trees(query, rng, 8)}
        assert len(roots) > 1

    def test_shared_subtree_shares_node_key(self, small_db, gen, rng):
        query = gen.generate(rng, 4, name="k3")
        aliases = sorted(query.relations)
        # Two different trees containing the identical left-deep pair.
        pair = JoinTree.join(JoinTree.leaf(aliases[0]), JoinTree.leaf(aliases[1]))
        tree_a = JoinTree.join(
            JoinTree.join(pair, JoinTree.leaf(aliases[2])),
            JoinTree.leaf(aliases[3]),
        )
        tree_b = JoinTree.join(
            pair, JoinTree.join(JoinTree.leaf(aliases[2]), JoinTree.leaf(aliases[3]))
        )
        keys_a, _ = tree_keys(tree_a, query)
        keys_b, _ = tree_keys(tree_b, query)
        assert keys_a[id(pair)] == keys_b[id(pair)]

    def test_selection_constant_changes_key(self, small_db, gen, rng):
        from repro.db.predicates import ColumnRef, Comparison, CompareOp

        query = gen.generate(rng, 3, name="k4")
        tree = random_join_tree(query, rng)
        _, before = tree_keys(tree, query)
        alias = sorted(query.relations)[0]
        query.selections.append(
            Comparison(ColumnRef(alias, "id"), CompareOp.GT, 1.0000001)
        )
        _, after_a = tree_keys(tree, query)
        query.selections[-1] = Comparison(
            ColumnRef(alias, "id"), CompareOp.GT, 1.0000002
        )
        _, after_b = tree_keys(tree, query)
        assert before != after_a
        assert after_a != after_b  # full-precision constants in the key


class TestMemoizedEvaluateTree:
    def test_bitwise_equal_costs_hit_and_miss(self, small_db, gen):
        rng = np.random.default_rng(7)
        query = gen.generate(rng, 5, name="m1")
        trees = random_trees(query, rng, 6)
        plain = Planner(small_db)
        memoized = Planner(small_db, cost_memo=SubPlanCostMemo())
        for _ in range(3):  # repeats exercise the hit path
            for tree in trees:
                expected = plain.evaluate_tree(tree, query)
                got = memoized.evaluate_tree(tree, query)
                assert got.cost.total == expected.cost.total
                assert got.cost.startup == expected.cost.startup
                assert got.cost.rows == expected.cost.rows
                assert got.plan.label() == expected.plan.label()
        memo = memoized.cost_memo
        assert memo.hits > 0 and memo.misses > 0
        assert 0.0 < memo.hit_rate < 1.0

    def test_root_hit_skips_rebuild(self, small_db, gen, rng):
        query = gen.generate(rng, 4, name="m2")
        tree = random_join_tree(query, rng)
        planner = Planner(small_db, cost_memo=SubPlanCostMemo())
        first = planner.evaluate_tree(tree, query)
        hits_before = planner.cost_memo.hits
        second = planner.evaluate_tree(tree, query)
        assert planner.cost_memo.hits > hits_before
        assert second.plan is first.plan  # the memoized object itself
        assert second.cost == first.cost

    def test_reward_source_evaluate_tree_matches_evaluate(self, small_db, gen):
        rng = np.random.default_rng(11)
        query = gen.generate(rng, 4, name="m3")
        tree = random_join_tree(query, rng)
        reward = CostModelReward(small_db)
        planner = Planner(small_db, cost_memo=SubPlanCostMemo())
        for _ in range(2):
            outcome, plan = reward.evaluate_tree(tree, query, planner)
            expected = reward.evaluate(
                Planner(small_db).complete_plan(tree, query), query
            )
            assert outcome.reward == expected.reward
            assert outcome.cost == expected.cost

    def test_cross_query_subtree_sharing(self, small_db, gen):
        """Two distinct query objects with the same structure share
        sub-plan entries (the keys are structural, not per-object)."""
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        query_a = gen.generate(rng_a, 4, name="share-a")
        query_b = gen.generate(rng_b, 4, name="share-b")
        assert query_a is not query_b
        tree = random_join_tree(query_a, np.random.default_rng(0))
        planner = Planner(small_db, cost_memo=SubPlanCostMemo())
        planner.evaluate_tree(tree, query_a)
        misses_before = planner.cost_memo.misses
        hits_before = planner.cost_memo.hits
        planner.evaluate_tree(tree, query_b)
        assert planner.cost_memo.hits > hits_before
        assert planner.cost_memo.misses == misses_before


class TestMemoBookkeeping:
    def test_lru_eviction(self):
        memo = SubPlanCostMemo(capacity=2)
        memo.put("a", None, None)
        memo.put("b", None, None)
        memo.put("c", None, None)
        assert len(memo) == 2
        assert memo.evictions == 1
        assert memo.get("a") is None  # evicted, counted as miss
        assert memo.get("c") is not None

    def test_clear_and_counters(self):
        memo = SubPlanCostMemo()
        memo.put("x", None, None)
        assert memo.clear() == 1
        assert len(memo) == 0
        stats = memo.as_dict()
        assert set(stats) == {
            "costmemo_hits",
            "costmemo_misses",
            "costmemo_evictions",
            "costmemo_invalidations_partial",
            "costmemo_size",
            "costmemo_hit_rate",
        }

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SubPlanCostMemo(capacity=0)

    def test_invalidate_tables_is_surgical(self):
        memo = SubPlanCostMemo()
        memo.put("ab", None, None, tables={"a", "b"})
        memo.put("bc", None, None, tables={"b", "c"})
        memo.put("untagged", None, None)
        assert memo.invalidate_tables({"a"}) == 2  # ab + conservative untagged
        assert memo.invalidations_partial == 2
        assert memo.get("bc") is not None
        assert memo.get("ab") is None

    def test_sync_epoch_with_table_epochs_keeps_unaffected_fragments(self):
        memo = SubPlanCostMemo()
        memo.sync_epoch(1, {"a": 1, "b": 1})  # take the initial snapshot
        memo.put("a-frag", None, None, tables={"a"})
        memo.put("b-frag", None, None, tables={"b"})
        memo.sync_epoch(2, {"a": 2, "b": 1})  # only table a re-analyzed
        assert memo.get("a-frag") is None
        assert memo.get("b-frag") is not None
        # Unchanged epoch: no-op even if called repeatedly.
        memo.sync_epoch(2, {"a": 2, "b": 1})
        assert memo.get("b-frag") is not None

    def test_sync_epoch_without_table_epochs_clears_everything(self):
        memo = SubPlanCostMemo()
        memo.put("x", None, None, tables={"a"})
        memo.sync_epoch(5)
        assert len(memo) == 0

    def test_analyze_invalidates_via_stats_epoch(self, gen):
        """Re-ANALYZE must drop memoized costs in EVERY attached memo,
        not just the serving layer's — the epoch check is the seam."""
        from tests.conftest import small_fks, small_specs
        from repro.db.engine import Database

        db = Database.from_specs(small_specs(), small_fks(), seed=7)
        local_gen = RandomQueryGenerator(db)
        rng = np.random.default_rng(1)
        query = local_gen.generate(rng, 3, name="epoch")
        tree = random_join_tree(query, rng)
        planner = Planner(db, cost_memo=SubPlanCostMemo())
        planner.evaluate_tree(tree, query)
        assert len(planner.cost_memo) > 0
        db.analyze(seed=99, sample_size=50)  # statistics change
        result = planner.evaluate_tree(tree, query)
        # The stale entries were dropped and the cost recomputed under
        # the new statistics (fresh misses, no epoch-crossing hit).
        fresh = Planner(db).evaluate_tree(tree, query)
        assert result.cost.total == fresh.cost.total

    def test_service_counters_and_refresh_clear(self, small_db, gen):
        from repro.core.featurize import QueryFeaturizer
        from repro.rl.ppo import PPOAgent
        from repro.serving import OptimizerService, ServingConfig

        featurizer = QueryFeaturizer(small_db.schema, max_relations=4)
        agent = PPOAgent(
            featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(0)
        )
        service = OptimizerService(
            small_db, agent, featurizer=featurizer,
            config=ServingConfig(regression_threshold=None),
        )
        rng = np.random.default_rng(2)
        queries = [gen.generate(rng, 3, name=f"svc-{i}") for i in range(3)]
        service.optimize_batch(queries)
        counters = service.counters()
        assert "costmemo_hits" in counters
        assert counters["costmemo_misses"] > 0
        service.refresh_statistics(seed=5, sample_size=500)
        assert len(service.planner.cost_memo) == 0
