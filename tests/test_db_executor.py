"""Tests for repro.db.executor: correctness vs brute force, budgets, clocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.executor import equi_join_indices
from repro.db.plans import (
    HashAggregate,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    SortAggregate,
)
from repro.db.predicates import ColumnRef, CompareOp, Comparison, JoinPredicate
from repro.db.query import AggregateSpec, parse_query
from repro.db.schema import NULL_INT
from tests.helpers import brute_force_count, brute_force_groups


class TestEquiJoinIndices:
    @given(
        st.lists(st.integers(0, 8), max_size=40),
        st.lists(st.integers(0, 8), max_size=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, left, right):
        lk = np.asarray(left, dtype=np.int64)
        rk = np.asarray(right, dtype=np.int64)
        size, pairs = equi_join_indices(lk, rk)
        li, ri = pairs.materialize()
        assert size == len(li) == len(ri)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i in range(len(lk))
            for j in range(len(rk))
            if lk[i] == rk[j]
        )
        assert got == expected

    def test_nulls_never_match(self):
        lk = np.array([1, NULL_INT, 2], dtype=np.int64)
        rk = np.array([NULL_INT, 1], dtype=np.int64)
        size, pairs = equi_join_indices(lk, rk)
        li, ri = pairs.materialize()
        assert size == 1
        assert (lk[li] == 1).all() and (rk[ri] == 1).all()

    def test_nan_never_match(self):
        lk = np.array([1.0, np.nan])
        rk = np.array([np.nan, 1.0])
        size, _ = equi_join_indices(lk, rk)
        assert size == 1

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        size, pairs = equi_join_indices(empty, empty)
        assert size == 0
        li, ri = pairs.materialize()
        assert len(li) == 0 and len(ri) == 0


def scan(alias, preds=()):
    return SeqScan(alias, alias, tuple(preds))


def join_pred(a, ca, b, cb):
    return JoinPredicate(ColumnRef(a, ca), ColumnRef(b, cb))


class TestScanExecution:
    def test_seq_scan_counts(self, small_db):
        q = parse_query("SELECT * FROM a WHERE a.x = 1", name="s")
        plan = scan("a", q.selections)
        result = small_db.execute_plan(plan, q)
        truth = int((small_db.tables["a"].column("x") == 1).sum())
        assert result.rows == truth
        assert result.latency_ms > 0
        assert not result.timed_out

    def test_index_scan_matches_seq_scan(self, small_db):
        q = parse_query("SELECT * FROM b WHERE b.a_id = 3", name="i")
        pred = q.selections[0]
        seq = small_db.execute_plan(scan("b", [pred]), q)
        idx_plan = IndexScan("b", "b", "a_id", pred)
        idx = small_db.execute_plan(idx_plan, q)
        assert idx.rows == seq.rows

    def test_index_range_scan(self, small_db):
        q = parse_query("SELECT * FROM a WHERE a.id BETWEEN 10 AND 20", name="r")
        pred = q.selections[0]
        idx = small_db.execute_plan(IndexScan("a", "a", "id", pred), q)
        assert idx.rows == 11

    def test_hash_index_equality_only(self, small_db):
        q = parse_query("SELECT * FROM a WHERE a.id > 10", name="h")
        pred = q.selections[0]
        plan = IndexScan("a", "a", "id", pred, kind="hash")
        with pytest.raises(LookupError):
            small_db.execute_plan(plan, q)

    def test_missing_index_raises(self, small_db):
        q = parse_query("SELECT * FROM a WHERE a.x = 1", name="m")
        plan = IndexScan("a", "a", "x", q.selections[0])
        with pytest.raises(LookupError):
            small_db.execute_plan(plan, q)

    def test_index_scan_with_residual(self, small_db):
        q = parse_query("SELECT * FROM b WHERE b.a_id = 3 AND b.z = 1", name="res")
        index_pred = q.selections[0]
        residual = (q.selections[1],)
        plan = IndexScan("b", "b", "a_id", index_pred, residual)
        result = small_db.execute_plan(plan, q)
        assert result.rows == brute_force_count(small_db, q)


class TestJoinExecution:
    @pytest.mark.parametrize("cls", [HashJoin, MergeJoin, NestedLoopJoin])
    def test_two_way_join_matches_brute_force(self, small_db, cls):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="j")
        plan = cls(scan("a"), scan("b"), tuple(q.joins))
        result = small_db.execute_plan(plan, q)
        assert result.rows == brute_force_count(small_db, q)

    def test_three_way_join_with_selections(self, small_db):
        q = parse_query(
            "SELECT * FROM a, b, c "
            "WHERE a.id = b.a_id AND b.id = c.b_id AND a.x < 5 AND c.w = 2",
            name="j3",
        )
        ab = HashJoin(
            scan("a", q.selections_for("a")),
            scan("b"),
            tuple(q.joins_between(["a"], ["b"])),
        )
        abc = HashJoin(
            ab,
            scan("c", q.selections_for("c")),
            tuple(q.joins_between(["a", "b"], ["c"])),
        )
        result = small_db.execute_plan(abc, q)
        assert result.rows == brute_force_count(small_db, q)

    def test_join_order_does_not_change_result(self, small_db):
        q = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="jo",
        )
        plan1 = HashJoin(
            HashJoin(scan("a"), scan("b"), tuple(q.joins_between(["a"], ["b"]))),
            scan("c"),
            tuple(q.joins_between(["a", "b"], ["c"])),
        )
        plan2 = HashJoin(
            scan("a"),
            HashJoin(scan("b"), scan("c"), tuple(q.joins_between(["b"], ["c"]))),
            tuple(q.joins_between(["a"], ["b", "c"])),
        )
        r1 = small_db.execute_plan(plan1, q)
        r2 = small_db.execute_plan(plan2, q)
        assert r1.rows == r2.rows

    def test_cross_product(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.x = 99999", name="cp")
        plan = NestedLoopJoin(scan("a", q.selections), scan("b"), ())
        result = small_db.execute_plan(plan, q)
        assert result.rows == 0  # empty left side

    def test_cross_product_counts(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.id < 3 AND b.id < 5", name="cp2")
        plan = NestedLoopJoin(
            scan("a", q.selections_for("a")), scan("b", q.selections_for("b")), ()
        )
        result = small_db.execute_plan(plan, q)
        assert result.rows == 3 * 5

    def test_nested_loop_slower_than_hash(self, small_db):
        q = parse_query("SELECT * FROM b, c WHERE b.id = c.b_id", name="nl")
        nl = NestedLoopJoin(scan("b"), scan("c"), tuple(q.joins))
        hj = HashJoin(scan("b"), scan("c"), tuple(q.joins))
        t_nl = small_db.execute_plan(nl, q).latency_ms
        t_hj = small_db.execute_plan(hj, q).latency_ms
        assert t_nl > t_hj

    def test_multi_predicate_join(self, small_db):
        # a.id = b.a_id AND a.x = b.z : second predicate filters pairs
        q = parse_query(
            "SELECT * FROM a, b WHERE a.id = b.a_id AND a.x = b.z", name="mp"
        )
        plan = HashJoin(scan("a"), scan("b"), tuple(q.joins))
        result = small_db.execute_plan(plan, q)
        assert result.rows == brute_force_count(small_db, q)

    def test_node_rows_recorded(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="nr")
        left = scan("a")
        plan = HashJoin(left, scan("b"), tuple(q.joins))
        result = small_db.execute_plan(plan, q)
        assert result.actual_rows(left) == 80
        assert result.actual_rows(plan) == result.rows


class TestBudget:
    def test_budget_censors_catastrophic_plan(self, small_db):
        q = parse_query("SELECT * FROM a, b, c", name="boom")
        cross = NestedLoopJoin(
            NestedLoopJoin(scan("a"), scan("b"), ()), scan("c"), ()
        )
        result = small_db.execute_plan(cross, q, budget_ms=0.5)
        assert result.timed_out
        assert result.latency_ms == 0.5

    def test_generous_budget_allows_execution(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="ok")
        plan = HashJoin(scan("a"), scan("b"), tuple(q.joins))
        result = small_db.execute_plan(plan, q, budget_ms=1e9)
        assert not result.timed_out

    def test_row_cap_censors(self, small_db):
        q = parse_query("SELECT * FROM a, b", name="cap")
        plan = NestedLoopJoin(scan("a"), scan("b"), ())
        executor = small_db.executor(budget_ms=1e9, max_intermediate_rows=100)
        result = executor.execute(plan, q)
        assert result.timed_out

    def test_bad_budget_rejected(self, small_db):
        with pytest.raises(ValueError):
            small_db.executor(budget_ms=0)

    def test_latency_deterministic(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="det")
        plan = HashJoin(scan("a"), scan("b"), tuple(q.joins))
        t1 = small_db.execute_plan(plan, q).latency_ms
        t2 = small_db.execute_plan(plan, q).latency_ms
        assert t1 == t2


class TestAggregateExecution:
    def test_count_star_no_group(self, small_db):
        q = parse_query(
            "SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id", name="cnt"
        )
        child = HashJoin(scan("a"), scan("b"), tuple(q.joins))
        plan = HashAggregate(child, (), tuple(q.aggregates))
        result = small_db.execute_plan(plan, q)
        assert result.rows == 1
        assert result.aggregates["COUNT(*)"][0] == brute_force_count(small_db, q)

    @pytest.mark.parametrize("cls", [HashAggregate, SortAggregate])
    def test_grouped_count(self, small_db, cls):
        q = parse_query(
            "SELECT a.x, COUNT(*) FROM a, b WHERE a.id = b.a_id GROUP BY a.x",
            name="grp",
        )
        child = HashJoin(scan("a"), scan("b"), tuple(q.joins))
        plan = cls(child, tuple(q.group_by), tuple(q.aggregates))
        result = small_db.execute_plan(plan, q)
        assert result.rows == brute_force_groups(small_db, q)
        assert result.aggregates["COUNT(*)"].sum() == brute_force_count(small_db, q)

    def test_min_max_sum_avg(self, small_db):
        q = parse_query(
            "SELECT MIN(a.x), MAX(a.x), SUM(a.x), AVG(a.x) FROM a", name="mm"
        )
        plan = HashAggregate(scan("a"), (), tuple(q.aggregates))
        result = small_db.execute_plan(plan, q)
        x = small_db.tables["a"].column("x")
        assert result.aggregates["MIN(a.x)"][0] == x.min()
        assert result.aggregates["MAX(a.x)"][0] == x.max()
        assert result.aggregates["SUM(a.x)"][0] == x.sum()
        assert result.aggregates["AVG(a.x)"][0] == pytest.approx(x.mean())

    def test_empty_group_input(self, small_db):
        q = parse_query(
            "SELECT a.x, COUNT(*) FROM a WHERE a.x = 99999 GROUP BY a.x",
            name="emptygrp",
        )
        plan = HashAggregate(
            scan("a", q.selections), tuple(q.group_by), tuple(q.aggregates)
        )
        result = small_db.execute_plan(plan, q)
        assert result.rows == 0
