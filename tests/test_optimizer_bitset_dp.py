"""Tests for the bitset expert lane: parity with the seed DP, pruning
semantics, cached join-graph derivations, and counter plumbing."""

import numpy as np
import pytest

from repro.db.datagen import ColumnSpec, TableSpec
from repro.db.engine import Database
from repro.db.plans import JoinTree
from repro.db.predicates import ColumnRef, CompareOp, Comparison, JoinPredicate
from repro.db.query import Query, QueryJoinGraph, parse_query
from repro.db.schema import ForeignKey
from repro.core.featurize import SlotState
from repro.optimizer.bitset_dp import (
    DPStats,
    FastJoinContext,
    fast_greedy_bottom_up,
    selinger_dp_bitset,
)
from repro.optimizer.join_search import _SearchContext, selinger_dp
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner


# ----------------------------------------------------------------------
# A wider database so the DP has real search spaces to chew on.
# ----------------------------------------------------------------------

N_TABLES = 8


@pytest.fixture(scope="module")
def wide_db() -> Database:
    """An 8-table FK chain (t0 <- t1 <- ... <- t7), small rows."""
    specs = []
    fks = []
    for k in range(N_TABLES):
        columns = [
            ColumnSpec("id", primary_key=True),
            ColumnSpec("v", distinct=6 + k, skew=0.7),
        ]
        if k > 0:
            columns.append(ColumnSpec("parent_id", fk_to=f"t{k - 1}.id"))
            fks.append(ForeignKey(f"t{k}", "parent_id", f"t{k - 1}", "id"))
        specs.append(TableSpec(f"t{k}", n_rows=60 + 25 * k, columns=columns))
    return Database.from_specs(specs, fks, seed=13)


def random_query(rng: np.random.Generator, n: int, name: str) -> Query:
    """A random connected n-relation query: spanning tree + extra edges,
    with a few selections (self-joins included via table reuse)."""
    relations = {f"r{i}": f"t{int(rng.integers(N_TABLES))}" for i in range(n)}
    aliases = sorted(relations)
    joins = []
    for i in range(1, n):
        j = int(rng.integers(i))
        joins.append(
            JoinPredicate(ColumnRef(aliases[i], "id"), ColumnRef(aliases[j], "id"))
        )
    for _ in range(int(rng.integers(0, n // 2 + 1))):
        i, j = rng.choice(n, size=2, replace=False)
        joins.append(
            JoinPredicate(
                ColumnRef(aliases[int(i)], "v"), ColumnRef(aliases[int(j)], "v")
            )
        )
    selections = [
        Comparison(ColumnRef(a, "v"), CompareOp.LE, float(rng.integers(2, 9)))
        for a in aliases
        if rng.uniform() < 0.5
    ]
    return Query(name=name, relations=relations, selections=selections, joins=joins)


def legacy_cost(db, query, tree) -> float:
    """The seed lane's own cost measure — the parity yardstick."""
    ctx = _SearchContext(query, db.estimator().for_query(query), db.cost_params)

    def walk(node):
        if node.is_leaf:
            return ctx.scan_cost(node.alias)
        return (
            walk(node.left)
            + walk(node.right)
            + ctx.join_cost(ctx.mask_of(node.left), ctx.mask_of(node.right))
        )

    return walk(tree)


def shape_query(shape: str, n: int, name: str) -> Query:
    """Chain, star, or clique over n distinct tables (n <= N_TABLES)."""
    relations = {f"r{i}": f"t{i}" for i in range(n)}
    aliases = sorted(relations)
    if shape == "chain":
        pairs = [(i, i + 1) for i in range(n - 1)]
    elif shape == "star":
        pairs = [(0, i) for i in range(1, n)]
    elif shape == "clique":
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        raise ValueError(shape)
    joins = [
        JoinPredicate(ColumnRef(aliases[i], "id"), ColumnRef(aliases[j], "id"))
        for i, j in pairs
    ]
    return Query(name=name, relations=relations, joins=joins)


# ----------------------------------------------------------------------
# Parity with the seed DP
# ----------------------------------------------------------------------


class TestParity:
    @pytest.mark.parametrize("bushy", [False, True])
    @pytest.mark.parametrize("prune", [False, True])
    def test_randomized_plan_identity(self, wide_db, bushy, prune):
        """Exact mode returns the seed DP's plan, tree for tree."""
        rng = np.random.default_rng(20)
        for rep in range(12):
            n = int(rng.integers(3, 8))
            query = random_query(rng, n, f"rand-{bushy}-{prune}-{rep}")
            cards = wide_db.estimator().for_query(query)
            seed_tree = selinger_dp(query, cards, wide_db.cost_params, bushy=bushy)
            fast_tree = selinger_dp_bitset(
                query,
                wide_db.estimator().for_query(query),
                wide_db.cost_params,
                bushy=bushy,
                prune=prune,
                exact=True,
            )
            assert fast_tree.render() == seed_tree.render()

    @pytest.mark.parametrize("shape", ["chain", "star", "clique"])
    @pytest.mark.parametrize("bushy", [False, True])
    def test_shape_parity(self, wide_db, shape, bushy):
        query = shape_query(shape, 6, f"{shape}-6")
        cards = wide_db.estimator().for_query(query)
        seed_tree = selinger_dp(query, cards, wide_db.cost_params, bushy=bushy)
        fast_tree = selinger_dp_bitset(
            query,
            wide_db.estimator().for_query(query),
            wide_db.cost_params,
            bushy=bushy,
        )
        assert fast_tree.render() == seed_tree.render()
        assert legacy_cost(wide_db, query, fast_tree) == pytest.approx(
            legacy_cost(wide_db, query, seed_tree), rel=1e-12
        )

    def test_cross_product_only_query(self, wide_db):
        """No joins at all: every relation is its own component."""
        query = Query(
            name="xp", relations={"x": "t0", "y": "t3", "z": "t5"}, joins=[]
        )
        cards = wide_db.estimator().for_query(query)
        seed_tree = selinger_dp(query, cards, wide_db.cost_params)
        fast_tree = selinger_dp_bitset(
            query, wide_db.estimator().for_query(query), wide_db.cost_params
        )
        assert fast_tree.render() == seed_tree.render()
        assert fast_tree.aliases == frozenset(["x", "y", "z"])

    def test_disconnected_components(self, wide_db):
        """Two joined pairs with no edge between them."""
        query = Query(
            name="2comp",
            relations={"a": "t0", "b": "t1", "c": "t2", "d": "t3"},
            joins=[
                JoinPredicate(ColumnRef("a", "id"), ColumnRef("b", "id")),
                JoinPredicate(ColumnRef("c", "id"), ColumnRef("d", "id")),
            ],
        )
        cards = wide_db.estimator().for_query(query)
        seed_tree = selinger_dp(query, cards, wide_db.cost_params)
        fast_tree = selinger_dp_bitset(
            query, wide_db.estimator().for_query(query), wide_db.cost_params
        )
        assert fast_tree.render() == seed_tree.render()

    def test_single_relation(self, wide_db):
        query = Query(name="one", relations={"a": "t0"}, joins=[])
        tree = selinger_dp_bitset(
            query, wide_db.estimator().for_query(query), wide_db.cost_params
        )
        assert tree.is_leaf and tree.alias == "a"

    def test_greedy_matches_legacy_semantics(self, wide_db):
        """fast_greedy merges connected pairs first and covers the query."""
        rng = np.random.default_rng(4)
        for rep in range(6):
            query = random_query(rng, 6, f"greedy-{rep}")
            tree = fast_greedy_bottom_up(
                query, wide_db.estimator().for_query(query), wide_db.cost_params
            )
            assert tree.aliases == frozenset(query.relations)
            for join in tree.iter_joins():
                assert query.joins_between(
                    tuple(join.left.aliases), tuple(join.right.aliases)
                )


# ----------------------------------------------------------------------
# Pruning semantics
# ----------------------------------------------------------------------


class TestPruning:
    def test_exact_pruning_counts_and_preserves_plan(self, wide_db):
        rng = np.random.default_rng(77)
        pruned_somewhere = 0
        for rep in range(8):
            query = random_query(rng, 7, f"prune-{rep}")
            stats = DPStats()
            pruned_tree = selinger_dp_bitset(
                query,
                wide_db.estimator().for_query(query),
                wide_db.cost_params,
                bushy=True,
                prune=True,
                exact=True,
                stats=stats,
            )
            plain_tree = selinger_dp_bitset(
                query,
                wide_db.estimator().for_query(query),
                wide_db.cost_params,
                bushy=True,
                prune=False,
            )
            assert pruned_tree.render() == plain_tree.render()
            assert stats.subsets_enumerated > 0
            pruned_somewhere += stats.entries_pruned
        assert pruned_somewhere > 0, "pruning never fired on any workload"

    def test_nonexact_never_worse_than_greedy_bound(self, wide_db):
        rng = np.random.default_rng(5)
        for rep in range(6):
            query = random_query(rng, 7, f"nonexact-{rep}")
            stats = DPStats()
            tree = selinger_dp_bitset(
                query,
                wide_db.estimator().for_query(query),
                wide_db.cost_params,
                bushy=False,
                prune=True,
                exact=False,
                prune_margin=0.2,
                stats=stats,
            )
            assert tree.aliases == frozenset(query.relations)
            greedy_tree = fast_greedy_bottom_up(
                query, wide_db.estimator().for_query(query), wide_db.cost_params
            )
            # The documented guarantee: aggressive pruning may lose the
            # optimum but never returns worse than the greedy bound's
            # plan space (left-deep here, so compare against the
            # linearized greedy, conservatively via the bushy greedy).
            assert legacy_cost(wide_db, query, tree) <= legacy_cost(
                wide_db, query, greedy_tree
            ) * 10.0

    def test_stats_accumulate_across_calls(self, wide_db):
        stats = DPStats()
        query = shape_query("clique", 5, "acc")
        for _ in range(2):
            selinger_dp_bitset(
                query,
                wide_db.estimator().for_query(query),
                wide_db.cost_params,
                stats=stats,
            )
        first = stats.subsets_enumerated
        assert first > 0
        assert stats.as_dict()["dp_subsets_enumerated"] == float(first)


# ----------------------------------------------------------------------
# Cached join-graph derivations (Query.join_graph_index)
# ----------------------------------------------------------------------


class TestJoinGraphIndex:
    def test_cached_instance_reused(self, small_db):
        q = parse_query(
            "SELECT * FROM a, b WHERE a.id = b.a_id", name="jg-cache"
        )
        assert q.join_graph_index() is q.join_graph_index()

    def test_structure(self):
        q = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="jg",
        )
        jg = q.join_graph_index()
        assert isinstance(jg, QueryJoinGraph)
        assert jg.aliases == ["a", "b", "c"]
        a, b, c = (jg.index[x] for x in "abc")
        assert jg.adjacency[a] == 1 << b
        assert jg.adjacency[b] == (1 << a) | (1 << c)
        assert jg.mask_of(["a", "c"]) == (1 << a) | (1 << c)
        assert jg.aliases_of((1 << a) | (1 << c)) == ["a", "c"]
        assert jg.neighbors(1 << a) == 1 << b

    def test_refreshed_after_visible_mutation(self):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="mut")
        jg = q.join_graph_index()
        q.joins.append(JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "z")))
        assert q.join_graph_index() is not jg
        assert len(q.join_graph_index().edges) == 2

    def test_fast_context_rows_match_estimator(self, wide_db):
        """FastJoinContext.rows is bitwise rows_for_aliases by mask."""
        rng = np.random.default_rng(9)
        query = random_query(rng, 6, "rows-parity")
        cards = wide_db.estimator().for_query(query)
        ctx = FastJoinContext(query, cards, wide_db.cost_params)
        jg = query.join_graph_index()
        for mask in range(1, 1 << jg.n):
            aliases = frozenset(jg.aliases_of(mask))
            assert ctx.rows(mask) == cards.rows_for_aliases(aliases)


# ----------------------------------------------------------------------
# Env step-masking rides the cached derivations
# ----------------------------------------------------------------------


class TestSlotStateConnectivity:
    def test_connected_matches_predicate_scan(self, wide_db):
        rng = np.random.default_rng(3)
        for rep in range(6):
            query = random_query(rng, 6, f"slots-{rep}")
            state = SlotState(query, 8)

            def reference(i, j):
                left, right = state.slots[i], state.slots[j]
                if left is None or right is None:
                    return False
                return bool(query.joins_between(left.aliases, right.aliases))

            while not state.done:
                occupied = state.occupied
                for i in occupied:
                    for j in occupied:
                        if i != j:
                            assert state.connected(i, j) == reference(i, j)
                pairs = [
                    (i, j)
                    for i in occupied
                    for j in occupied
                    if i < j and state.connected(i, j)
                ] or [(occupied[0], occupied[1])]
                i, j = pairs[int(rng.integers(len(pairs)))]
                state.join(i, j)


# ----------------------------------------------------------------------
# Planner integration: lanes, counters, memo bridge
# ----------------------------------------------------------------------


class TestPlannerLanes:
    @pytest.mark.parametrize("shape", ["chain", "star", "clique"])
    def test_lane_parity_at_switchover_boundary(self, wide_db, shape):
        """Below the threshold both lanes run DP and agree; at the
        threshold both switch to the same seeded GEQO."""
        below = shape_query(shape, 5, f"{shape}-below")
        at = shape_query(shape, 6, f"{shape}-at")
        fast = Planner(wide_db, geqo_threshold=6, expert_lane="bitset")
        legacy = Planner(wide_db, geqo_threshold=6, expert_lane="legacy")
        r_fast, r_legacy = fast.optimize(below), legacy.optimize(below)
        assert r_fast.used_exhaustive_search and r_legacy.used_exhaustive_search
        assert r_fast.join_tree.render() == r_legacy.join_tree.render()
        assert r_fast.cost.total == r_legacy.cost.total
        g_fast, g_legacy = fast.optimize(at), legacy.optimize(at)
        assert not g_fast.used_exhaustive_search
        assert not g_legacy.used_exhaustive_search
        assert g_fast.join_tree.render() == g_legacy.join_tree.render()

    def test_rejects_unknown_lane(self, wide_db):
        with pytest.raises(ValueError):
            Planner(wide_db, expert_lane="quantum")

    def test_counters_populated(self, wide_db):
        planner = Planner(wide_db, geqo_threshold=8)
        query = shape_query("chain", 6, "counters")
        planner.optimize(query)
        counters = planner.counters()
        assert counters["dp_subsets_enumerated"] > 0
        assert counters["expert_plans"] == 1.0
        assert counters["expert_plan_ms_p50"] > 0.0
        assert counters["expert_plan_ms_p95"] >= counters["expert_plan_ms_p50"]
        assert len(planner.expert_latency_samples()) == 1

    def test_memo_bridge_answers_repeat_expert_plans(self, wide_db):
        memo = SubPlanCostMemo()
        planner = Planner(wide_db, geqo_threshold=8, cost_memo=memo)
        query = shape_query("star", 5, "memo-bridge")
        first = planner.optimize(query)
        hits_before = memo.hits
        second = planner.optimize(query)
        assert memo.hits > hits_before, "repeat expert plan missed the memo"
        assert second.cost == first.cost  # bitwise: served from the memo
        assert second.plan is first.plan

    def test_memo_bridge_shares_fragments_with_evaluate_tree(self, wide_db):
        """A tree costed via evaluate_tree seeds fragments the expert
        path's DP plan reuses (bitmask -> structural key bridge)."""
        memo = SubPlanCostMemo()
        planner = Planner(wide_db, geqo_threshold=8, cost_memo=memo)
        query = shape_query("chain", 5, "memo-frag")
        expert = planner.optimize(query)
        memo_size = len(memo)
        assert memo_size > 0
        # Re-evaluating the same tree through the policy-side API is a
        # pure memo hit.
        again = planner.evaluate_tree(expert.join_tree, query)
        assert again.cost == expert.cost
        assert again.plan is expert.plan


class TestServingCounters:
    def test_service_and_frontend_report_expert_lane(self, small_db):
        from repro.core.featurize import QueryFeaturizer
        from repro.rl.ppo import PPOAgent
        from repro.serving import (
            FrontEndConfig,
            ServingConfig,
            ServingFrontEnd,
        )

        featurizer = QueryFeaturizer(small_db.schema, max_relations=3)
        agent = PPOAgent(
            featurizer.state_dim,
            featurizer.n_pair_actions,
            np.random.default_rng(3),
        )
        query = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="counter-probe",
        )
        with ServingFrontEnd.build(
            small_db,
            agent,
            featurizer=featurizer,
            serving_config=ServingConfig(regression_threshold=1.0),
            config=FrontEndConfig(n_shards=2, max_batch=4, max_delay_ms=10.0),
        ) as frontend:
            frontend.optimize(query)
            shard_counters = [s.counters() for s in frontend.services]
            rolled = frontend.counters()
        # The guardrail consulted the expert, so exactly one shard's
        # planner planned once; the rollup sums the counts and pools the
        # latency samples for exact percentiles.
        assert sum(c["expert_plans"] for c in shard_counters) == 1.0
        assert rolled["expert_plans"] == 1.0
        assert rolled["dp_subsets_enumerated"] >= 3.0
        assert "dp_pruned" in rolled
        assert rolled["expert_plan_ms_p50"] > 0.0
        assert rolled["expert_plan_ms_p95"] >= rolled["expert_plan_ms_p50"]
