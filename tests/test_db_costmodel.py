"""Tests for repro.db.costmodel: relative orderings the optimizer relies on."""

import pytest

from repro.db.costmodel import CostParams, PlanCost
from repro.db.plans import (
    HashAggregate,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    SortAggregate,
)
from repro.db.predicates import ColumnRef, CompareOp, Comparison, JoinPredicate
from repro.db.query import AggregateSpec, parse_query


@pytest.fixture()
def ctx(small_db):
    query = parse_query(
        "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
        name="chain",
    )
    return small_db.cost_model(), small_db.cardinalities(query), query


def ab_join(cls):
    return cls(
        SeqScan("a", "a"),
        SeqScan("b", "b"),
        (JoinPredicate(ColumnRef("a", "id"), ColumnRef("b", "a_id")),),
    )


class TestPlanCost:
    def test_total_below_startup_rejected(self):
        with pytest.raises(ValueError):
            PlanCost(startup=10.0, total=5.0)


class TestScanCosts:
    def test_seq_scan_positive_and_monotone_in_size(self, ctx):
        model, cards, _ = ctx
        small = model.cost(SeqScan("a", "a"), cards)
        large = model.cost(SeqScan("c", "c"), cards)
        assert 0 < small.total < large.total

    def test_predicates_add_cpu_cost(self, ctx):
        model, cards, _ = ctx
        bare = model.cost(SeqScan("a", "a"), cards)
        pred = Comparison(ColumnRef("a", "x"), CompareOp.EQ, 1)
        filtered = model.cost(SeqScan("a", "a", (pred,)), cards)
        assert filtered.total > bare.total

    def test_selective_index_beats_seq_scan(self, medium_db):
        query = parse_query("SELECT * FROM big WHERE big.id = 5", name="pt")
        model = medium_db.cost_model()
        cards = medium_db.cardinalities(query)
        pred = Comparison(ColumnRef("big", "id"), CompareOp.EQ, 5)
        index = model.cost(IndexScan("big", "big", "id", pred), cards)
        seq = model.cost(SeqScan("big", "big", (pred,)), cards)
        assert index.total < seq.total

    def test_unselective_index_loses_to_seq_scan(self, medium_db):
        query = parse_query("SELECT * FROM big WHERE big.id >= 0", name="all")
        model = medium_db.cost_model()
        cards = medium_db.cardinalities(query)
        pred = Comparison(ColumnRef("big", "id"), CompareOp.GE, 0)
        index = model.cost(IndexScan("big", "big", "id", pred), cards)
        seq = model.cost(SeqScan("big", "big", (pred,)), cards)
        assert seq.total < index.total


class TestJoinCosts:
    def test_hash_beats_nested_loop_on_large_inputs(self, ctx):
        model, cards, _ = ctx
        assert model.cost(ab_join(HashJoin), cards).total < model.cost(
            ab_join(NestedLoopJoin), cards
        ).total

    def test_merge_join_costed(self, ctx):
        model, cards, _ = ctx
        cost = model.cost(ab_join(MergeJoin), cards)
        assert cost.total > 0
        assert cost.startup > 0  # sorting happens before output

    def test_hash_join_startup_includes_build(self, ctx):
        model, cards, _ = ctx
        cost = model.cost(ab_join(HashJoin), cards)
        build_cost = model.cost(SeqScan("a", "a"), cards)
        assert cost.startup >= build_cost.total

    def test_cross_product_much_more_expensive(self, small_db):
        query = parse_query("SELECT * FROM a, c WHERE a.id = c.b_id", name="x")
        model = small_db.cost_model()
        cards = small_db.cardinalities(query)
        joined = NestedLoopJoin(
            SeqScan("a", "a"),
            SeqScan("c", "c"),
            (JoinPredicate(ColumnRef("a", "id"), ColumnRef("c", "b_id")),),
        )
        cross = NestedLoopJoin(SeqScan("a", "a"), SeqScan("c", "c"), ())
        assert model.cost(cross, cards).total > model.cost(joined, cards).total

    def test_rows_propagate(self, ctx):
        model, cards, _ = ctx
        cost = model.cost(ab_join(HashJoin), cards)
        assert cost.rows == pytest.approx(
            cards.rows_for_aliases(frozenset(["a", "b"]))
        )


class TestAggregateCosts:
    def make_agg(self, cls):
        return cls(
            ab_join(HashJoin),
            (ColumnRef("a", "x"),),
            (AggregateSpec("count", None),),
        )

    def test_aggregate_adds_cost(self, ctx):
        model, cards, _ = ctx
        base = model.cost(ab_join(HashJoin), cards)
        agg = model.cost(self.make_agg(HashAggregate), cards)
        assert agg.total > base.total

    def test_sort_aggregate_costed(self, ctx):
        model, cards, _ = ctx
        cost = model.cost(self.make_agg(SortAggregate), cards)
        assert cost.total > 0

    def test_group_rows_capped_by_input(self, ctx):
        model, cards, _ = ctx
        agg = model.cost(self.make_agg(HashAggregate), cards)
        child_rows = cards.rows_for_aliases(frozenset(["a", "b"]))
        assert agg.rows <= child_rows


class TestCostParams:
    def test_custom_params_change_costs(self, small_db):
        query = parse_query("SELECT * FROM a", name="scan")
        cards = small_db.cardinalities(query)
        from repro.db.costmodel import CostModel

        cheap = CostModel(small_db.schema, small_db.stats, CostParams(seq_page_cost=0.1))
        default = small_db.cost_model()
        plan = SeqScan("a", "a")
        assert cheap.cost(plan, cards).total < default.cost(plan, cards).total

    def test_unknown_node_rejected(self, ctx):
        model, cards, _ = ctx
        with pytest.raises(TypeError):
            model.cost(object(), cards)
