"""Tests for the multiprocess serving stack: pickle round-trips for
everything that crosses the spawn boundary or a worker pipe, the
shared-memory ring and framed transport underneath it, hash-ring
determinism across processes, and the process-mode front end end to
end (plan parity with thread shards, stats-epoch ordering, SIGKILL
respawn rejoining at the live policy version)."""

import multiprocessing
import pickle
import time

import numpy as np
import pytest

from repro.core.featurize import QueryFeaturizer
from repro.db.query import parse_query
from repro.rl.ppo import PPOAgent
from repro.serving import (
    CircuitOpen,
    DeadlineExceeded,
    FaultConfig,
    FrameConn,
    FrontEndConfig,
    HashRing,
    InjectedFault,
    LoadShedded,
    OptimizeError,
    ProcessWorkerClient,
    RetriesExhausted,
    ServiceClosed,
    ServingConfig,
    ServingFrontEnd,
    ShardFailed,
    ShmRing,
    WorkerProcessDied,
)

AB = "SELECT * FROM a, b WHERE a.id = b.a_id"
BC = "SELECT * FROM b, c WHERE b.id = c.b_id"
ABC = "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id"
LIVE_VERSION = 2


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def plan_repr(plan) -> str:
    return repr(plan.plan)


# ---------------------------------------------------------------------------
# Pickle round-trips: everything that crosses a pipe or spawn boundary
# ---------------------------------------------------------------------------
ERROR_CASES = [
    (ServiceClosed, {}),
    (LoadShedded, {"retry_after_s": 0.05}),
    (DeadlineExceeded, {"stage": "serve"}),
    (ShardFailed, {"retry_after_s": 2.0}),
    (CircuitOpen, {"retry_after_s": 0.75}),
    (RetriesExhausted, {}),
    (InjectedFault, {}),
    (WorkerProcessDied, {"exitcode": -9}),
]


class TestPickleRoundTrips:
    @pytest.mark.parametrize(
        "cls,extra", ERROR_CASES, ids=[c.code for c, _ in ERROR_CASES]
    )
    def test_error_subclass_round_trips(self, cls, extra):
        original = cls(
            f"synthetic {cls.code}",
            query_name="13a",
            fingerprint="fp-abc",
            shard=1,
            attempts=2,
            **extra,
        )
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is cls
        assert str(clone) == str(original)
        assert clone.code == cls.code
        assert clone.retryable == cls.retryable
        assert clone.to_dict() == original.to_dict()
        assert clone.__dict__ == original.__dict__

    def test_retries_exhausted_keeps_cause_chain(self):
        cause = ShardFailed(
            "worker shard 0 died mid-batch",
            query_name="13a",
            fingerprint="fp-abc",
            shard=0,
            attempts=3,
        )
        exhausted = RetriesExhausted(
            "request '13a' failed all 3 attempts (last: shard_failed)",
            query_name="13a",
            attempts=3,
        )
        exhausted.__cause__ = cause
        clone = pickle.loads(pickle.dumps(exhausted))
        assert isinstance(clone, RetriesExhausted)
        assert isinstance(clone.__cause__, ShardFailed)
        assert str(clone.__cause__) == str(cause)
        assert clone.__cause__.shard == 0
        assert clone.__cause__.attempts == 3

    def test_base_error_round_trips(self):
        clone = pickle.loads(pickle.dumps(OptimizeError("plain failure")))
        assert type(clone) is OptimizeError
        assert str(clone) == "plain failure"

    def test_fault_config_bit_faithful(self):
        config = FaultConfig(
            worker_fault_rate=0.017,
            latency_spike_rate=0.23,
            spike_ms=37.5,
            policy_nan_rate=0.003,
            stats_race_rate=0.41,
            replay_poison_rate=0.09,
            worker_kill_rate=0.031,
            seed=918273,
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        for kind in ("worker_fault", "latency_spike", "worker_kill"):
            assert clone.rate(kind) == config.rate(kind)


# ---------------------------------------------------------------------------
# ShmRing: the SPSC byte ring under the transport
# ---------------------------------------------------------------------------
class TestShmRing:
    def make_ring(self, capacity):
        ring = ShmRing(capacity=capacity, create=True)
        yield_ring = ring

        def cleanup():
            yield_ring.close()
            yield_ring.unlink()

        return ring, cleanup

    def test_write_read_advance(self):
        ring, cleanup = self.make_ring(256)
        try:
            offset = ring.try_write(b"hello ring")
            assert offset == 0
            assert ring.read(offset, 10) == b"hello ring"
            ring.advance(offset + 10)
            assert ring.tail == 10
        finally:
            cleanup()

    def test_wrap_pads_to_contiguous(self):
        ring, cleanup = self.make_ring(64)
        try:
            first = ring.try_write(b"a" * 48)
            assert first == 0
            ring.advance(48)
            # 32 bytes would straddle position 48..80: the producer
            # pads to the wrap point, so the slice stays contiguous.
            second = ring.try_write(b"b" * 32)
            assert second is not None
            assert second % ring.capacity == 0
            assert ring.read(second, 32) == b"b" * 32
        finally:
            cleanup()

    def test_full_ring_returns_none(self):
        ring, cleanup = self.make_ring(64)
        try:
            assert ring.try_write(b"x" * 64) == 0
            assert ring.try_write(b"y") is None  # no space until advance
            ring.advance(64)
            assert ring.try_write(b"y") is not None
        finally:
            cleanup()

    def test_oversized_and_empty_writes_fall_back(self):
        ring, cleanup = self.make_ring(64)
        try:
            assert ring.try_write(b"z" * 65) is None
            assert ring.try_write(b"") is None
        finally:
            cleanup()

    def test_attach_by_name_sees_producer_bytes(self):
        ring, cleanup = self.make_ring(256)
        try:
            offset = ring.try_write(b"cross-mapping")
            attached = ShmRing(name=ring.name)
            try:
                assert attached.read(offset, 13) == b"cross-mapping"
            finally:
                attached.close()
        finally:
            cleanup()


# ---------------------------------------------------------------------------
# FrameConn: framing, out-of-band buffers, ring-full fallback, EOF
# ---------------------------------------------------------------------------
@pytest.fixture
def frame_pair():
    """Two FrameConn endpoints over one duplex pipe, with a shm ring on
    the a->b direction (b reads what a diverts)."""
    left, right = multiprocessing.Pipe(duplex=True)
    ring = ShmRing(capacity=1 << 16, create=True)
    a = FrameConn(left, send_ring=ring)
    b = FrameConn(right, recv_ring=ring)
    yield a, b, ring
    a.close()
    b.close()
    ring.close()
    ring.unlink()


class TestFrameConn:
    def test_small_object_stays_in_band(self, frame_pair):
        a, b, ring = frame_pair
        a.send(7, {"op": "ping", "n": 3})
        kind, obj = b.recv()
        assert kind == 7
        assert obj == {"op": "ping", "n": 3}
        assert ring.head == 0  # nothing diverted

    def test_large_buffer_travels_through_ring(self, frame_pair):
        a, b, ring = frame_pair
        matrix = np.arange(2048, dtype=np.float64).reshape(64, 32)
        a.send(1, matrix)
        kind, clone = b.recv()
        assert kind == 1
        np.testing.assert_array_equal(clone, matrix)
        assert ring.head >= matrix.nbytes  # the floats went out-of-band

    def test_mixed_buffer_sizes_keep_their_order(self, frame_pair):
        # Regression: with inverted buffer_callback semantics the
        # diverted and in-band buffers swap positions and a (32,) bias
        # deserializes against a (387, 32) weight buffer.
        a, b, _ = frame_pair
        payload = {
            "W0": np.random.default_rng(0).normal(size=(387, 32)),
            "b0": np.zeros(32),
            "W1": np.random.default_rng(1).normal(size=(32, 32)),
            "tiny": np.float64(3.5),
        }
        a.send(2, payload)
        _, clone = b.recv()
        for name, arr in payload.items():
            np.testing.assert_array_equal(clone[name], arr)

    def test_ring_full_falls_back_inline(self):
        left, right = multiprocessing.Pipe(duplex=True)
        ring = ShmRing(capacity=1024, create=True)  # smaller than payload
        from repro.serving import TransportStats

        stats = TransportStats()
        a = FrameConn(left, send_ring=ring, stats=stats)
        b = FrameConn(right, recv_ring=ring, stats=stats)
        try:
            big = np.ones(4096, dtype=np.float64)
            a.send(3, big)
            _, clone = b.recv()
            np.testing.assert_array_equal(clone, big)
            assert stats.shm_fallbacks >= 1
            assert stats.bytes_shm == 0
        finally:
            a.close()
            b.close()
            ring.close()
            ring.unlink()

    def test_closed_peer_raises_eof(self, frame_pair):
        a, b, _ = frame_pair
        a.close()
        with pytest.raises(EOFError):
            b.recv()


# ---------------------------------------------------------------------------
# HashRing determinism across a process boundary
# ---------------------------------------------------------------------------
def _child_ring_orders(n_shards, replicas, keys, conn):
    ring = HashRing(n_shards, replicas=replicas)
    conn.send([ring.fallback_order(key) for key in keys])
    conn.close()


class TestHashRingAcrossProcesses:
    def test_fallback_order_matches_in_spawned_process(self):
        keys = [f"fp-{i:03d}" for i in range(64)]
        ring = HashRing(4, replicas=32)
        local = [ring.fallback_order(key) for key in keys]
        for order in local:
            assert sorted(order) == [0, 1, 2, 3]  # a full permutation

        ctx = multiprocessing.get_context("spawn")
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_child_ring_orders, args=(4, 32, keys, child)
        )
        proc.start()
        try:
            remote = parent.recv()
        finally:
            proc.join(30)
        assert remote == local


# ---------------------------------------------------------------------------
# Process-mode front end, end to end
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def proc_db(module_small_db):
    """A private database copy: these tests re-ANALYZE statistics."""
    return module_small_db


@pytest.fixture(scope="module")
def proc_featurizer(proc_db):
    return QueryFeaturizer(proc_db.schema, max_relations=3)


@pytest.fixture(scope="module")
def proc_agent(proc_db, proc_featurizer):
    return PPOAgent(
        proc_featurizer.state_dim,
        proc_featurizer.n_pair_actions,
        np.random.default_rng(3),
    )


def build_frontend(db, agent, featurizer, executor, **config_kwargs):
    config_kwargs.setdefault("n_shards", 2)
    config_kwargs.setdefault("max_batch", 4)
    config_kwargs.setdefault("max_delay_ms", 5.0)
    return ServingFrontEnd.build(
        db,
        agent,
        featurizer=featurizer,
        serving_config=ServingConfig(regression_threshold=1.5),
        config=FrontEndConfig(executor=executor, **config_kwargs),
    )


@pytest.fixture(scope="module")
def proc_frontend(proc_db, proc_agent, proc_featurizer):
    frontend = build_frontend(proc_db, proc_agent, proc_featurizer, "process")
    yield frontend
    frontend.close()


QUERIES = [(AB, "ab"), (BC, "bc"), (ABC, "abc")]


class TestProcessFrontEnd:
    def test_serves_and_reports_transport_counters(self, proc_frontend):
        plans = proc_frontend.optimize_batch(
            [parse_query(sql, name) for sql, name in QUERIES], timeout=60.0
        )
        assert len(plans) == len(QUERIES)
        for plan in plans:
            assert plan.plan is not None
            assert plan.source in {
                "cache", "policy", "fallback", "expert",
                "degraded_cache", "degraded_dp", "degraded_greedy",
            }
        counters = proc_frontend.counters()
        assert counters["frontend_executor_processes"] == 2
        assert counters["transport_frames_sent"] > 0
        assert counters["transport_bytes_pipe"] > 0

    def test_plan_parity_with_thread_executor(
        self, proc_db, proc_agent, proc_featurizer, proc_frontend
    ):
        queries = [parse_query(sql, name) for sql, name in QUERIES]
        thread_frontend = build_frontend(
            proc_db, proc_agent, proc_featurizer, "thread"
        )
        try:
            thread_plans = thread_frontend.optimize_batch(queries, timeout=60.0)
        finally:
            thread_frontend.close()
        proc_plans = proc_frontend.optimize_batch(queries, timeout=60.0)
        for thread_plan, proc_plan in zip(thread_plans, proc_plans):
            assert plan_repr(thread_plan) == plan_repr(proc_plan)

    def test_served_plan_round_trips_through_pickle(self, proc_frontend):
        plan = proc_frontend.optimize(parse_query(AB, "ab-pickle"), timeout=60.0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.query_name == plan.query_name
        assert clone.fingerprint == plan.fingerprint
        assert clone.cost == plan.cost
        assert clone.source == plan.source
        assert clone.attempts == plan.attempts
        assert clone.policy_version == plan.policy_version
        assert plan_repr(clone) == plan_repr(plan)

    def test_sigkill_respawn_rejoins_at_live_policy_version(
        self, proc_db, proc_agent, proc_featurizer
    ):
        frontend = build_frontend(
            proc_db, proc_agent, proc_featurizer, "process",
            supervisor_interval_s=0.05,
        )
        try:
            params = {
                name: np.copy(arr)
                for name, arr in proc_agent.policy.net.net.params.items()
            }
            for service in frontend.services:
                service.apply_policy_weights(params, LIVE_VERSION)
            assert all(
                s.policy_version == LIVE_VERSION for s in frontend.services
            )

            victim = frontend.services[0]
            assert isinstance(victim, ProcessWorkerClient)
            victim.kill()  # real SIGKILL against the worker process
            assert wait_until(
                lambda: frontend.stats.worker_restarts >= 1
                and all(s.is_alive() for s in frontend.services)
            ), "supervisor did not respawn the killed worker"

            # The replacement is a different proxy/process that must
            # have been caught up to the hot-swapped weights.
            assert all(
                s.policy_version == LIVE_VERSION for s in frontend.services
            )
            plan = frontend.optimize(parse_query(BC, "bc-postkill"), timeout=60.0)
            assert plan.plan is not None
        finally:
            frontend.close()

    def test_stats_epoch_bump_orders_before_next_serve(self, proc_frontend):
        query = parse_query(ABC, "abc-epoch")
        first = proc_frontend.optimize(query, timeout=60.0)
        again = proc_frontend.optimize(query, timeout=60.0)
        assert again.source == "cache"  # warmed: second hit is cached
        assert plan_repr(again) == plan_repr(first)

        # refresh_statistics returns only after every worker bumped its
        # epoch and evicted staled caches: the very next serve must not
        # come from a pre-refresh cache entry.
        proc_frontend.refresh_statistics(seed=11, sample_size=300)
        fresh = proc_frontend.optimize(query, timeout=60.0)
        assert fresh.source != "cache"
        assert fresh.plan is not None
