"""Tests for repro.db.table and repro.db.datagen."""

import numpy as np
import pytest

from repro.db.datagen import (
    ColumnSpec,
    TableSpec,
    _zipf_weights,
    generate_database_tables,
    generate_table,
)
from repro.db.schema import NULL_INT, Column, DataType, TableSchema
from repro.db.table import Table


class TestTable:
    def test_from_dict(self):
        schema = TableSchema("t", (Column("a"), Column("f", DataType.FLOAT)))
        table = Table.from_dict(schema, {"a": [1, 2, 3], "f": [0.5, 1.5, 2.5]})
        assert table.n_rows == 3
        assert table.column("a").dtype == np.int64

    def test_missing_column_rejected(self):
        schema = TableSchema("t", (Column("a"), Column("b")))
        with pytest.raises(ValueError, match="column mismatch"):
            Table(schema, {"a": np.zeros(2, dtype=np.int64)})

    def test_ragged_rejected(self):
        schema = TableSchema("t", (Column("a"), Column("b")))
        with pytest.raises(ValueError, match="ragged"):
            Table(
                schema,
                {
                    "a": np.zeros(2, dtype=np.int64),
                    "b": np.zeros(3, dtype=np.int64),
                },
            )

    def test_wrong_dtype_rejected(self):
        schema = TableSchema("t", (Column("a"),))
        with pytest.raises(ValueError, match="dtype"):
            Table(schema, {"a": np.zeros(2, dtype=np.float64)})

    def test_gather(self):
        schema = TableSchema("t", (Column("a"),))
        table = Table.from_dict(schema, {"a": [10, 20, 30]})
        assert list(table.gather("a", np.array([2, 0]))) == [30, 10]

    def test_n_pages_positive(self):
        schema = TableSchema("t", (Column("a"),))
        table = Table.from_dict(schema, {"a": []})
        assert table.n_pages == 1


class TestZipfWeights:
    def test_uniform_when_zero_skew(self):
        w = _zipf_weights(4, 0.0)
        assert np.allclose(w, 0.25)

    def test_normalized(self):
        w = _zipf_weights(100, 1.5)
        assert np.isclose(w.sum(), 1.0)

    def test_monotone_decreasing(self):
        w = _zipf_weights(50, 1.0)
        assert (np.diff(w) <= 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _zipf_weights(0, 1.0)


class TestGenerateTable:
    def spec(self, **extra_cols):
        cols = [ColumnSpec("id", primary_key=True), ColumnSpec("v", distinct=10)]
        cols += list(extra_cols.values())
        return TableSpec("t", 500, cols)

    def test_primary_key_dense(self, rng):
        table = generate_table(self.spec(), rng)
        assert np.array_equal(table.column("id"), np.arange(500))

    def test_categorical_domain(self, rng):
        table = generate_table(self.spec(), rng)
        v = table.column("v")
        assert v.min() >= 0 and v.max() < 10

    def test_skew_concentrates_mass(self, rng):
        spec = TableSpec(
            "t", 5000, [ColumnSpec("s", distinct=100, skew=1.5)]
        )
        table = generate_table(spec, rng)
        _, counts = np.unique(table.column("s"), return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[0] > 5 * np.median(counts)

    def test_fk_values_from_parent(self, rng):
        parent = generate_table(
            TableSpec("p", 50, [ColumnSpec("id", primary_key=True)]), rng
        )
        child_spec = TableSpec(
            "c", 300, [ColumnSpec("p_id", fk_to="p.id")]
        )
        child = generate_table(child_spec, rng, {"p.id": parent.column("id")})
        assert set(child.column("p_id")) <= set(parent.column("id"))

    def test_fk_missing_domain_raises(self, rng):
        spec = TableSpec("c", 10, [ColumnSpec("p_id", fk_to="p.id")])
        with pytest.raises(KeyError, match="missing FK domain"):
            generate_table(spec, rng)

    def test_correlated_column_tracks_base(self, rng):
        spec = TableSpec(
            "t",
            2000,
            [
                ColumnSpec("x", distinct=20),
                ColumnSpec("y", distinct=20, correlated_with="x", noise_frac=0.0),
            ],
        )
        table = generate_table(spec, rng)
        x, y = table.column("x"), table.column("y")
        # Noise-free correlation is a deterministic function of x.
        mapping = {}
        for xi, yi in zip(x, y):
            assert mapping.setdefault(xi, yi) == yi

    def test_correlation_requires_existing_column(self, rng):
        spec = TableSpec("t", 10, [ColumnSpec("y", correlated_with="nope")])
        with pytest.raises(KeyError):
            generate_table(spec, rng)

    def test_null_fraction(self, rng):
        spec = TableSpec("t", 1000, [ColumnSpec("v", distinct=5, null_frac=0.3)])
        table = generate_table(spec, rng)
        frac = (table.column("v") == NULL_INT).mean()
        assert 0.25 < frac < 0.35

    def test_float_column(self, rng):
        spec = TableSpec("t", 100, [ColumnSpec("f", dtype=DataType.FLOAT, distinct=10)])
        table = generate_table(spec, rng)
        f = table.column("f")
        assert f.dtype == np.float64
        assert (f >= 0).all() and (f <= 10).all()


class TestGenerateDatabase:
    def test_specs_resolved_in_order(self, rng):
        specs = [
            TableSpec("p", 20, [ColumnSpec("id", primary_key=True)]),
            TableSpec("c", 100, [ColumnSpec("p_id", fk_to="p.id")]),
        ]
        tables = generate_database_tables(specs, rng)
        assert set(tables) == {"p", "c"}
        assert set(tables["c"].column("p_id")) <= set(tables["p"].column("id"))

    def test_forward_reference_raises(self, rng):
        specs = [
            TableSpec("c", 100, [ColumnSpec("p_id", fk_to="p.id")]),
            TableSpec("p", 20, [ColumnSpec("id", primary_key=True)]),
        ]
        with pytest.raises(KeyError):
            generate_database_tables(specs, rng)
