"""Tests for repro.optimizer.join_search."""

import itertools
import math

import numpy as np
import pytest

from repro.db.plans import JoinTree
from repro.db.query import parse_query
from repro.optimizer.join_search import (
    _SearchContext,
    estimate_join_cost,
    geqo_join_search,
    greedy_bottom_up,
    random_join_tree,
    selinger_dp,
)
from repro.db.costmodel import CostParams


@pytest.fixture()
def chain_query(small_db):
    q = parse_query(
        "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
        name="chain",
    )
    q.validate_against(small_db.schema)
    return q


def all_join_trees(aliases):
    """Every binary join tree over the aliases (exhaustive reference)."""
    if len(aliases) == 1:
        yield JoinTree.leaf(aliases[0])
        return
    items = list(aliases)
    for size in range(1, len(items)):
        for left_set in itertools.combinations(items, size):
            right_set = [a for a in items if a not in left_set]
            if items[0] not in left_set:
                continue  # canonical split: avoids mirror duplicates
            for left in all_join_trees(list(left_set)):
                for right in all_join_trees(right_set):
                    yield JoinTree.join(left, right)


def tree_cost(ctx, tree):
    """Score a tree with the same cost measure the DP uses."""
    if tree.is_leaf:
        return ctx.scan_cost(tree.alias)
    left_cost = tree_cost(ctx, tree.left)
    right_cost = tree_cost(ctx, tree.right)
    return (
        left_cost
        + right_cost
        + ctx.join_cost(ctx.mask_of(tree.left), ctx.mask_of(tree.right))
    )


def seed_join_cost_formula(left_rows, right_rows, out_rows, has_equi, params):
    """The seed's estimate_join_cost, transcribed operation for
    operation — the bitwise regression oracle."""
    nl = left_rows * right_rows * params.cpu_operator_cost
    if not has_equi:
        best = nl
    else:
        hash_cost = (
            min(left_rows, right_rows) * params.hash_build_cost
            + max(left_rows, right_rows) * params.hash_probe_cost
        )
        sort = 0.0
        for n in (left_rows, right_rows):
            n = max(n, 2.0)
            sort += 2.0 * n * math.log2(n) * params.cpu_operator_cost
        merge = sort + (left_rows + right_rows) * params.cpu_operator_cost
        best = min(nl, hash_cost, merge)
    return best + out_rows * params.cpu_tuple_cost


class TestEstimateJoinCost:
    params = CostParams()

    def test_cross_product_is_nested_loop(self):
        cross = estimate_join_cost(1000, 1000, 1e6, False, self.params)
        equi = estimate_join_cost(1000, 1000, 1000, True, self.params)
        assert cross > equi

    def test_output_rows_add_cost(self):
        small = estimate_join_cost(100, 100, 10, True, self.params)
        large = estimate_join_cost(100, 100, 10_000, True, self.params)
        assert large > small

    def test_bitwise_pinned_to_seed_formula(self):
        """The hoisted implementation must not move a single bit."""
        rows = (0.0, 0.5, 1.0, 1.5, 2.0, 3.7, 100.0, 12345.6, 1e6, 1e12)
        for left in rows:
            for right in rows:
                for out in (1.0, left * right or 1.0):
                    for equi in (False, True):
                        got = estimate_join_cost(left, right, out, equi, self.params)
                        want = seed_join_cost_formula(
                            left, right, out, equi, self.params
                        )
                        assert got == want, (left, right, out, equi)

    def test_sub_two_row_inputs_guarded(self):
        """log2 never sees < 2 rows: no negative sort terms, finite
        costs even for degenerate zero-row estimates."""
        for left, right in [(0.0, 0.0), (0.5, 1.0), (1.0, 1e6), (1.9, 1.9)]:
            cost = estimate_join_cost(left, right, 1.0, True, self.params)
            assert math.isfinite(cost)
            # best >= 0 plus the output tax: an unguarded log2 would let
            # a negative sort term drag the merge candidate below this.
            assert cost >= 1.0 * self.params.cpu_tuple_cost


class TestSelingerDP:
    def test_covers_all_relations(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        tree = selinger_dp(chain_query, cards)
        assert tree.aliases == frozenset(["a", "b", "c"])

    def test_optimal_vs_exhaustive(self, small_db, chain_query):
        """DP must match brute-force enumeration on its own cost measure."""
        cards = small_db.cardinalities(chain_query)
        ctx = _SearchContext(chain_query, cards)
        dp_tree = selinger_dp(chain_query, cards)
        best = min(
            tree_cost(ctx, t) for t in all_join_trees(sorted(chain_query.relations))
        )
        assert tree_cost(ctx, dp_tree) == pytest.approx(best)

    def test_avoids_cross_products_on_connected_graph(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        tree = selinger_dp(chain_query, cards)
        for join in tree.iter_joins():
            preds = chain_query.joins_between(
                tuple(join.left.aliases), tuple(join.right.aliases)
            )
            assert preds, f"cross product at {join.render()}"

    def test_disconnected_graph_cross_joined(self, small_db):
        q = parse_query("SELECT * FROM a, c", name="disc")
        cards = small_db.cardinalities(q)
        tree = selinger_dp(q, cards)
        assert tree.aliases == frozenset(["a", "c"])

    def test_left_deep_only_mode(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        tree = selinger_dp(chain_query, cards, bushy=False)
        # every right child must be a leaf
        for join in tree.iter_joins():
            assert join.right.is_leaf

    def test_single_relation(self, small_db):
        q = parse_query("SELECT * FROM a", name="one")
        cards = small_db.cardinalities(q)
        tree = selinger_dp(q, cards)
        assert tree.is_leaf and tree.alias == "a"


class TestGreedy:
    def test_covers_all_relations(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        tree = greedy_bottom_up(chain_query, cards)
        assert tree.aliases == frozenset(["a", "b", "c"])

    def test_prefers_connected_pairs(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        tree = greedy_bottom_up(chain_query, cards)
        for join in tree.iter_joins():
            preds = chain_query.joins_between(
                tuple(join.left.aliases), tuple(join.right.aliases)
            )
            assert preds

    def test_handles_disconnected(self, small_db):
        q = parse_query("SELECT * FROM a, c", name="disc2")
        cards = small_db.cardinalities(q)
        tree = greedy_bottom_up(q, cards)
        assert tree.aliases == frozenset(["a", "c"])

    def test_no_worse_than_worst_dp_factor(self, small_db, chain_query):
        """Greedy is heuristic but should stay within a sane factor of DP."""
        cards = small_db.cardinalities(chain_query)
        ctx = _SearchContext(chain_query, cards)
        dp = tree_cost(ctx, selinger_dp(chain_query, cards))
        greedy = tree_cost(ctx, greedy_bottom_up(chain_query, cards))
        assert greedy <= dp * 10


class TestGeqo:
    def test_covers_all_relations(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        tree = geqo_join_search(
            chain_query, cards, rng=np.random.default_rng(0)
        )
        assert tree.aliases == frozenset(["a", "b", "c"])

    def test_left_deep_output(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        tree = geqo_join_search(chain_query, cards, rng=np.random.default_rng(1))
        for join in tree.iter_joins():
            assert join.right.is_leaf

    def test_deterministic_given_seed(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        t1 = geqo_join_search(chain_query, cards, rng=np.random.default_rng(5))
        t2 = geqo_join_search(chain_query, cards, rng=np.random.default_rng(5))
        assert t1.render() == t2.render()

    def test_single_relation(self, small_db):
        q = parse_query("SELECT * FROM a", name="one")
        cards = small_db.cardinalities(q)
        tree = geqo_join_search(q, cards, rng=np.random.default_rng(0))
        assert tree.is_leaf

    def test_finds_near_optimal_on_tiny_query(self, small_db, chain_query):
        """With 3 relations the GA should land close to the DP optimum."""
        cards = small_db.cardinalities(chain_query)
        ctx = _SearchContext(chain_query, cards)
        dp = tree_cost(ctx, selinger_dp(chain_query, cards, bushy=False))
        ga = tree_cost(
            ctx, geqo_join_search(chain_query, cards, rng=np.random.default_rng(2))
        )
        assert ga <= dp * 1.5

    def test_work_scales_with_pool_and_generations(self, small_db, chain_query):
        import time

        cards = small_db.cardinalities(chain_query)
        t0 = time.perf_counter()
        geqo_join_search(
            chain_query, cards, rng=np.random.default_rng(3),
            pool_size=8, generations=8,
        )
        small = time.perf_counter() - t0
        t0 = time.perf_counter()
        geqo_join_search(
            chain_query, cards, rng=np.random.default_rng(3),
            pool_size=64, generations=400,
        )
        large = time.perf_counter() - t0
        assert large > small


class TestRandom:
    def test_valid_tree(self, small_db, chain_query):
        rng = np.random.default_rng(0)
        tree = random_join_tree(chain_query, rng)
        assert tree.aliases == frozenset(["a", "b", "c"])

    def test_different_seeds_vary(self, small_db, chain_query):
        trees = {
            random_join_tree(chain_query, np.random.default_rng(s)).render()
            for s in range(20)
        }
        assert len(trees) > 1

    def test_avoids_cross_products_when_possible(self, small_db, chain_query):
        rng = np.random.default_rng(1)
        for _ in range(10):
            tree = random_join_tree(chain_query, rng)
            for join in tree.iter_joins():
                assert chain_query.joins_between(
                    tuple(join.left.aliases), tuple(join.right.aliases)
                )

    def test_cross_products_allowed_when_requested(self, small_db, chain_query):
        rng = np.random.default_rng(2)
        seen_cross = False
        for _ in range(50):
            tree = random_join_tree(chain_query, rng, avoid_cross_products=False)
            for join in tree.iter_joins():
                if not chain_query.joins_between(
                    tuple(join.left.aliases), tuple(join.right.aliases)
                ):
                    seen_cross = True
        assert seen_cross
