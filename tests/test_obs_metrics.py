"""Tests for the typed metrics layer: instrument semantics, the
documented histogram quantile error bound, callback-backed pulls,
registry merge equivalence, and exposition round-trips."""

import numpy as np
import pytest

from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_bucket_bounds,
    parse_exposition,
    quantile_error_bound,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("repro_test_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_only_goes_up(self):
        with pytest.raises(ValueError):
            Counter("repro_test_total").inc(-1)

    def test_callback_backed_reads_source_and_rejects_inc(self):
        source = {"n": 7}
        c = Counter("repro_test_total", fn=lambda: source["n"])
        assert c.value == 7.0
        source["n"] = 9
        assert c.value == 9.0
        with pytest.raises(RuntimeError):
            c.inc()

    def test_name_taxonomy_enforced(self):
        with pytest.raises(ValueError):
            Counter("Repro-Bad-Name")


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("repro_test_entries")
        g.set(4)
        g.add(-1.5)
        assert g.value == 2.5

    def test_callback_backed_rejects_writes(self):
        g = Gauge("repro_test_entries", fn=lambda: 3)
        assert g.value == 3.0
        with pytest.raises(RuntimeError):
            g.set(1)
        with pytest.raises(RuntimeError):
            g.add(1)


class TestHistogram:
    def test_empty_reads_are_zero(self):
        h = Histogram("repro_test_ms")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.summary()["p99"] == 0.0

    def test_identical_samples_are_reported_exactly(self):
        # The min/max clamp collapses interpolation when every sample
        # shares one bucket.
        h = Histogram("repro_test_ms")
        for _ in range(100):
            h.observe(3.7)
        assert h.quantile(0.5) == pytest.approx(3.7)
        assert h.quantile(0.99) == pytest.approx(3.7)
        assert h.min == 3.7 and h.max == 3.7

    def test_sum_count_mean_are_exact(self):
        h = Histogram("repro_test_ms")
        samples = [0.01, 0.5, 3.0, 42.0, 900.0]
        for v in samples:
            h.observe(v)
        assert h.count == len(samples)
        assert h.sum == pytest.approx(sum(samples))
        assert h.mean == pytest.approx(sum(samples) / len(samples))

    def test_quantiles_respect_documented_error_bound(self):
        # Lognormal latencies spanning several decades: every reported
        # percentile must be within the bucket-edge ratio of the true
        # empirical quantile.
        rng = np.random.default_rng(11)
        samples = np.exp(rng.normal(1.0, 1.5, size=5000))
        h = Histogram("repro_test_ms")
        for v in samples:
            h.observe(float(v))
        bound = quantile_error_bound()
        assert bound == pytest.approx(10 ** (1 / BUCKETS_PER_DECADE) - 1)
        for q in (0.5, 0.95, 0.99):
            true = float(np.quantile(samples, q))
            got = h.quantile(q)
            assert abs(got - true) / true <= bound + 1e-9, (q, got, true)

    def test_quantiles_clamp_to_observed_range(self):
        h = Histogram("repro_test_ms")
        for v in (2.0, 2.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) >= 2.0
        assert h.quantile(1.0) <= 3.0

    def test_merge_equals_pooling_raw_samples(self):
        rng = np.random.default_rng(5)
        samples = np.exp(rng.normal(0.0, 2.0, size=2000))
        pooled = Histogram("repro_test_ms")
        shards = [Histogram("repro_test_ms") for _ in range(4)]
        for i, v in enumerate(samples):
            pooled.observe(float(v))
            shards[i % 4].observe(float(v))
        merged = Histogram("repro_test_ms")
        for shard in shards:
            merged.merge_from(shard)
        assert merged.count == pooled.count
        assert merged.sum == pytest.approx(pooled.sum)
        assert merged._counts == pooled._counts
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == pytest.approx(pooled.quantile(q))

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("repro_test_ms")
        b = Histogram("repro_test_ms", bounds=(1.0, 10.0))
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_default_bounds_are_log_spaced(self):
        bounds = default_bucket_bounds()
        assert bounds == tuple(sorted(bounds))
        ratios = [bounds[i + 1] / bounds[i] for i in range(len(bounds) - 1)]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)


class TestMetricsRegistry:
    def test_get_or_create_returns_one_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_test_total") is reg.counter("repro_test_total")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total")
        with pytest.raises(TypeError):
            reg.gauge("repro_test_total")

    def test_register_adopts_and_rejects_duplicates(self):
        reg = MetricsRegistry()
        h = Histogram("repro_test_ms")
        reg.register(h)
        reg.register(h)  # same object is idempotent
        assert reg.get("repro_test_ms") is h
        with pytest.raises(ValueError):
            reg.register(Histogram("repro_test_ms"))

    def test_merge_sums_and_pools(self):
        shards = [MetricsRegistry() for _ in range(3)]
        for k, reg in enumerate(shards):
            reg.counter("repro_test_total").inc(k + 1)
            reg.gauge("repro_test_entries").set(10)
            reg.histogram("repro_test_ms").observe(float(k + 1))
        merged = MetricsRegistry.merge(shards)
        assert merged.get("repro_test_total").value == 6.0
        assert merged.get("repro_test_entries").value == 30.0
        hist = merged.get("repro_test_ms")
        assert hist.count == 3
        assert hist.sum == pytest.approx(6.0)

    def test_merge_reads_callback_backed_values(self):
        reg = MetricsRegistry()
        reg.counter_fn("repro_test_total", lambda: 12)
        merged = MetricsRegistry.merge([reg])
        assert merged.get("repro_test_total").value == 12.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total").inc(2)
        reg.histogram("repro_test_ms").observe(1.5)
        snap = reg.snapshot()
        assert snap["repro_test_total"] == 2.0
        assert set(snap["repro_test_ms"]) == {
            "count", "sum", "mean", "min", "max", "p50", "p95", "p99",
        }

    def test_exposition_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total", "help text").inc(3)
        reg.gauge("repro_test_entries").set(-2)
        h = reg.histogram("repro_test_ms")
        for v in (0.5, 5.0, 5.0, 50.0):
            h.observe(v)
        samples = parse_exposition(reg.exposition())
        assert samples["repro_test_total"] == 3.0
        assert samples["repro_test_entries"] == -2.0
        assert samples["repro_test_ms_count"] == 4.0
        assert samples["repro_test_ms_sum"] == pytest.approx(60.5)
        assert samples['repro_test_ms_bucket{le="+Inf"}'] == 4.0
        # Cumulative bucket counts are non-decreasing.
        buckets = [
            v for k, v in samples.items()
            if k.startswith("repro_test_ms_bucket")
        ]
        assert buckets == sorted(buckets)

    def test_parse_exposition_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not a metric line !!!")
