"""Tests for the structured event stream: envelope shape, ring-buffer
bounds, kind filtering, the JSONL file sink, and parse validation."""

import pytest

from repro.obs.events import EventLog


class TestEventLog:
    def test_emit_stamps_envelope(self):
        log = EventLog(clock=lambda: 123.456)
        event = log.emit("guardrail_fallback", query="q1", ratio=2.5)
        assert event == {
            "ts": 123.456,
            "kind": "guardrail_fallback",
            "query": "q1",
            "ratio": 2.5,
        }
        assert log.all() == [event]
        assert log.emitted == 1

    def test_ring_is_bounded_but_emitted_is_total(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert [e["i"] for e in log.all()] == [7, 8, 9]
        assert log.emitted == 10
        assert log.tail(2) == log.all()[-2:]

    def test_of_kind_and_counts(self):
        log = EventLog()
        log.emit("slow_query", trace_id="a")
        log.emit("stats_invalidation", scope="all")
        log.emit("slow_query", trace_id="b")
        assert [e["trace_id"] for e in log.of_kind("slow_query")] == ["a", "b"]
        assert log.counts() == {"slow_query": 2, "stats_invalidation": 1}

    def test_file_sink_survives_ring_eviction(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=2, path=path)
        for i in range(5):
            log.emit("tick", i=i)
        events = EventLog.parse_jsonl(path.read_text())
        # The ring kept 2; the file kept all 5.
        assert [e["i"] for e in events] == [0, 1, 2, 3, 4]
        assert all(e["kind"] == "tick" and "ts" in e for e in events)

    def test_to_jsonl_round_trips(self):
        log = EventLog()
        log.emit("retraining_replay", trajectories=4, weights_updated=True)
        events = EventLog.parse_jsonl(log.to_jsonl())
        assert events[0]["trajectories"] == 4

    def test_parse_rejects_missing_envelope(self):
        with pytest.raises(ValueError):
            EventLog.parse_jsonl('{"kind": "no_ts"}')
        with pytest.raises(ValueError):
            EventLog.parse_jsonl('[1, 2, 3]')

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)
