"""Cross-phase behaviour of the staged environment and action growth.

These tests pin down the contract incremental learning depends on:
earlier action ids keep their meaning when later stages unlock, and
trajectories recorded before a growth step remain usable afterwards.
"""

import numpy as np
import pytest

from repro.core.envs import Stage, StagedPlanEnv
from repro.db.query import parse_query
from repro.rl.env import rollout
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.workloads.generator import Workload


@pytest.fixture(scope="module")
def workload(small_db):
    queries = [
        parse_query(
            "SELECT COUNT(*) FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="agg3",
        ),
        parse_query("SELECT * FROM b, c WHERE b.id = c.b_id", name="bc"),
    ]
    for q in queries:
        q.validate_against(small_db.schema)
    return Workload("growth", queries)


def random_act(state, mask, rng, greedy):
    return int(rng.choice(np.nonzero(mask)[0])), 0.0


class TestActionIdStability:
    def test_pair_ids_identical_across_stage_sets(self, small_db, workload):
        """The pair-action block occupies the same ids in every config."""
        envs = {
            stages: StagedPlanEnv(small_db, workload, stages=stages)
            for stages in (
                Stage.JOIN_ORDER,
                Stage.JOIN_ORDER | Stage.ACCESS_PATH,
                Stage.all(),
            )
        }
        masks = {}
        for stages, env in envs.items():
            state, mask = env.reset(workload["bc"])
            # skip access decisions to reach the pair phase
            while env._phase == 0:
                result = env.step(env._access_base)
                mask = result.mask
            masks[stages] = mask
        p = envs[Stage.JOIN_ORDER].featurizer.n_pair_actions
        for stages, mask in masks.items():
            assert np.array_equal(
                mask[:p], masks[Stage.JOIN_ORDER][:p]
            ), f"pair mask differs under {stages}"

    def test_prefix_growth_matches_layout(self, small_db, workload):
        env_all = StagedPlanEnv(small_db, workload, stages=Stage.all())
        p = env_all.featurizer.n_pair_actions
        assert env_all._access_base == p
        assert env_all._join_op_base == p + 2
        assert env_all._agg_base == p + 5

    def test_partial_stage_sets_compact_layout(self, small_db, workload):
        env = StagedPlanEnv(
            small_db, workload, stages=Stage.JOIN_ORDER | Stage.JOIN_OPERATOR
        )
        p = env.featurizer.n_pair_actions
        assert env._access_base == -1
        assert env._join_op_base == p
        assert env.n_actions == p + 3


class TestTrajectoriesAcrossGrowth:
    def test_old_trajectories_trainable_after_growth(self, small_db, workload):
        """Trajectories from the small action space must remain valid
        training data after the policy's action layer grows."""
        rng = np.random.default_rng(0)
        env_small = StagedPlanEnv(
            small_db, workload, stages=Stage.JOIN_ORDER,
            rng=np.random.default_rng(1),
        )
        agent = ReinforceAgent(
            env_small.state_dim, env_small.n_actions, rng, ReinforceConfig()
        )
        old_trajectories = [
            rollout(env_small, random_act, rng) for _ in range(3)
        ]
        agent.policy_net.grow_outputs(5, rng)
        metrics = agent.update(old_trajectories)
        assert np.isfinite(metrics["policy_loss"])

    def test_greedy_policy_never_picks_locked_actions(self, small_db, workload):
        """After growth, masked (locked-stage) actions stay unpickable."""
        rng = np.random.default_rng(2)
        env = StagedPlanEnv(
            small_db, workload, stages=Stage.JOIN_ORDER,
            rng=np.random.default_rng(3),
        )
        agent = ReinforceAgent(env.state_dim, env.n_actions + 7, rng)
        state, mask = env.reset()
        for _ in range(10):
            action, _ = agent.act(state, mask, rng)
            assert action < env.n_actions
            result = env.step(action)
            state, mask = result.state, result.mask
            if result.done:
                state, mask = env.reset()


class TestStateDimStability:
    def test_state_dim_constant_across_stage_sets(self, small_db, workload):
        dims = {
            StagedPlanEnv(small_db, workload, stages=s).state_dim
            for s in (Stage.JOIN_ORDER, Stage.all())
        }
        assert len(dims) == 1
