"""Tests for repro.db.predicates and repro.db.query (IR + parser)."""

import numpy as np
import pytest

from repro.db.predicates import (
    BetweenPredicate,
    ColumnRef,
    CompareOp,
    Comparison,
    InPredicate,
    JoinPredicate,
)
from repro.db.query import AggregateSpec, Query, QueryParseError, parse_query
from repro.db.schema import NULL_INT


class TestPredicateEvaluation:
    values = np.array([1, 5, 10, NULL_INT, 5], dtype=np.int64)

    def test_eq(self):
        pred = Comparison(ColumnRef("t", "v"), CompareOp.EQ, 5)
        assert list(pred.evaluate(self.values)) == [False, True, False, False, True]

    def test_ne_excludes_null(self):
        pred = Comparison(ColumnRef("t", "v"), CompareOp.NE, 5)
        assert list(pred.evaluate(self.values)) == [True, False, True, False, False]

    def test_lt_excludes_null_sentinel(self):
        pred = Comparison(ColumnRef("t", "v"), CompareOp.LT, 100)
        # NULL_INT is numerically tiny but must not match
        assert list(pred.evaluate(self.values)) == [True, True, True, False, True]

    @pytest.mark.parametrize(
        "op,expected",
        [
            (CompareOp.LE, [True, True, False, False, True]),
            (CompareOp.GT, [False, False, True, False, False]),
            (CompareOp.GE, [False, True, True, False, True]),
        ],
    )
    def test_inequalities(self, op, expected):
        pred = Comparison(ColumnRef("t", "v"), op, 5)
        assert list(pred.evaluate(self.values)) == expected

    def test_between(self):
        pred = BetweenPredicate(ColumnRef("t", "v"), 2, 9)
        assert list(pred.evaluate(self.values)) == [False, True, False, False, True]

    def test_between_reversed_bounds(self):
        with pytest.raises(ValueError):
            BetweenPredicate(ColumnRef("t", "v"), 9, 2)

    def test_in(self):
        pred = InPredicate(ColumnRef("t", "v"), (1, 10))
        assert list(pred.evaluate(self.values)) == [True, False, True, False, False]

    def test_in_empty_rejected(self):
        with pytest.raises(ValueError):
            InPredicate(ColumnRef("t", "v"), ())

    def test_float_nan_never_matches(self):
        values = np.array([1.0, np.nan, 3.0])
        pred = Comparison(ColumnRef("t", "v"), CompareOp.GE, 0)
        assert list(pred.evaluate(values)) == [True, False, True]


class TestJoinPredicate:
    def test_same_alias_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate(ColumnRef("a", "x"), ColumnRef("a", "y"))

    def test_connects(self):
        jp = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert jp.connects(["a"], ["b"])
        assert jp.connects(["b"], ["a"])
        assert not jp.connects(["a"], ["c"])

    def test_side_for(self):
        jp = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert jp.side_for("a").column == "x"
        assert jp.side_for("b").column == "y"
        with pytest.raises(KeyError):
            jp.side_for("c")


class TestQuery:
    def make(self):
        return Query(
            name="q",
            relations={"a": "users", "b": "orders"},
            selections=[Comparison(ColumnRef("a", "age"), CompareOp.GT, 30)],
            joins=[JoinPredicate(ColumnRef("a", "id"), ColumnRef("b", "user_id"))],
        )

    def test_basic_accessors(self):
        q = self.make()
        assert q.n_relations == 2
        assert q.table_of("a") == "users"
        assert len(q.selections_for("a")) == 1
        assert q.selections_for("b") == []

    def test_unknown_alias_rejected(self):
        with pytest.raises(ValueError):
            Query(
                name="q",
                relations={"a": "users"},
                selections=[Comparison(ColumnRef("zz", "x"), CompareOp.EQ, 1)],
            )

    def test_join_graph_connected(self):
        q = self.make()
        assert q.is_connected()
        g = q.join_graph()
        assert g.has_edge("a", "b")

    def test_joins_between(self):
        q = self.make()
        assert len(q.joins_between(["a"], ["b"])) == 1
        assert q.joins_between(["a"], ["a"]) == []

    def test_empty_relations_rejected(self):
        with pytest.raises(ValueError):
            Query(name="q", relations={})

    def test_aggregate_spec_validation(self):
        with pytest.raises(ValueError):
            AggregateSpec("median", None)
        with pytest.raises(ValueError):
            AggregateSpec("sum", None)
        assert AggregateSpec("count", None).render() == "COUNT(*)"


class TestParser:
    def test_simple_join(self):
        q = parse_query(
            "SELECT * FROM users AS a, orders AS b "
            "WHERE a.id = b.user_id AND a.age > 30;"
        )
        assert q.relations == {"a": "users", "b": "orders"}
        assert len(q.joins) == 1
        assert len(q.selections) == 1
        assert q.selections[0].op is CompareOp.GT

    def test_no_alias_defaults_to_table(self):
        q = parse_query("SELECT * FROM users WHERE users.age <= 5")
        assert q.relations == {"users": "users"}

    def test_between_and_in(self):
        q = parse_query(
            "SELECT * FROM t AS x WHERE x.a BETWEEN 1 AND 10 AND x.b IN (1, 2, 3)"
        )
        assert isinstance(q.selections[0], BetweenPredicate)
        assert isinstance(q.selections[1], InPredicate)
        assert q.selections[1].values == (1.0, 2.0, 3.0)

    def test_aggregates_and_group_by(self):
        q = parse_query(
            "SELECT t.k, COUNT(*), MIN(t.v) FROM t GROUP BY t.k"
        )
        assert q.group_by == [ColumnRef("t", "k")]
        assert [a.func for a in q.aggregates] == ["count", "min"]

    def test_roundtrip_through_sql(self):
        original = parse_query(
            "SELECT COUNT(*) FROM users AS a, orders AS b "
            "WHERE a.id = b.user_id AND a.age >= 18 AND b.total < 100"
        )
        reparsed = parse_query(original.sql())
        assert reparsed.relations == original.relations
        assert len(reparsed.joins) == len(original.joins)
        assert len(reparsed.selections) == len(original.selections)
        assert [a.func for a in reparsed.aggregates] == ["count"]

    def test_duplicate_alias_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT * FROM t AS a, u AS a")

    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("DELETE FROM t")

    def test_bad_conjunct_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT * FROM t WHERE t.a LIKE 5")

    def test_self_join_aliases(self):
        q = parse_query(
            "SELECT * FROM info_type AS it1, info_type AS it2 "
            "WHERE it1.id = it2.id"
        )
        assert q.relations == {"it1": "info_type", "it2": "info_type"}

    def test_validate_against_schema(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id AND a.x = 1")
        q.validate_against(small_db.schema)
        bad = parse_query("SELECT * FROM a WHERE a.nope = 1")
        with pytest.raises(KeyError):
            bad.validate_against(small_db.schema)
