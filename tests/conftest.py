"""Shared fixtures: a small synthetic database used across test modules."""

import numpy as np
import pytest

from repro.db.datagen import ColumnSpec, TableSpec
from repro.db.engine import Database
from repro.db.schema import DataType, ForeignKey


def small_specs():
    """A 3-table chain: a <- b <- c, with skew and a correlated column."""
    return [
        TableSpec(
            "a",
            n_rows=80,
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("x", distinct=10, skew=1.2),
                ColumnSpec("y", distinct=40, correlated_with="x", noise_frac=0.2),
                ColumnSpec("f", dtype=DataType.FLOAT, distinct=100),
            ],
        ),
        TableSpec(
            "b",
            n_rows=200,
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("a_id", fk_to="a.id", skew=0.8),
                ColumnSpec("z", distinct=15, skew=0.5),
            ],
        ),
        TableSpec(
            "c",
            n_rows=400,
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("b_id", fk_to="b.id", skew=1.0),
                ColumnSpec("w", distinct=8),
            ],
        ),
    ]


def small_fks():
    return [
        ForeignKey("b", "a_id", "a", "id"),
        ForeignKey("c", "b_id", "b", "id"),
    ]


@pytest.fixture(scope="session")
def small_db() -> Database:
    return Database.from_specs(small_specs(), small_fks(), seed=7)


@pytest.fixture
def fresh_small_db() -> Database:
    """A private small database for tests that mutate statistics state."""
    return Database.from_specs(small_specs(), small_fks(), seed=7)


@pytest.fixture(scope="session")
def medium_db() -> Database:
    """A single 20k-row table where index-vs-seqscan tradeoffs are real."""
    specs = [
        TableSpec(
            "big",
            n_rows=20_000,
            columns=[
                ColumnSpec("id", primary_key=True),
                ColumnSpec("v", distinct=50, skew=1.0),
            ],
        )
    ]
    return Database.from_specs(specs, [], seed=11)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="module")
def module_small_db() -> Database:
    """A module-private small database: shared within one test module
    (cheaper than per-test copies when the module spawns worker
    processes against it) but isolated from the session database, so
    statistics mutations cannot leak across modules."""
    return Database.from_specs(small_specs(), small_fks(), seed=7)
