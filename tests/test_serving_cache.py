"""Tests for the LRU+TTL plan cache (repro.serving.cache)."""

import pytest

from repro.serving import PlanCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLRU:
    def test_hit_and_miss_counting(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", "plan")
        assert cache.get("k") == "plan"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_order_is_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a's recency
        cache.put("c", 3)  # evicts b, not a
        assert cache.stats.evictions == 1
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_existing_key_updates_without_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.get("a") == 10
        # "a" is now most recent, so adding a third key evicts "b".
        cache.put("c", 3)
        assert "b" not in cache

    def test_keys_in_recency_order(self):
        cache = PlanCache(capacity=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ["b", "a"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
        with pytest.raises(ValueError):
            PlanCache(ttl_s=0)


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_s=10.0, clock=clock)
        cache.put("k", "plan")
        clock.advance(9.0)
        assert cache.get("k") == "plan"
        clock.advance(2.0)
        assert cache.get("k") is None
        assert cache.stats.expirations == 1
        assert "k" not in cache

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_s=None, clock=clock)
        cache.put("k", "plan")
        clock.advance(1e9)
        assert cache.get("k") == "plan"


class TestInvalidation:
    def test_invalidate_single_key(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.stats.invalidations == 1
        assert cache.get("a") is None

    def test_clear_counts_all_entries(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_stats_dict_shape(self):
        stats = PlanCache(capacity=4).stats.as_dict()
        assert {"cache_hits", "cache_misses", "cache_evictions",
                "cache_hit_rate", "cache_invalidations_partial"} <= set(stats)


class TestPartialInvalidation:
    def test_drops_only_entries_touching_the_tables(self):
        cache = PlanCache(capacity=8)
        cache.put("ab", 1, tables={"a", "b"})
        cache.put("bc", 2, tables={"b", "c"})
        cache.put("c", 3, tables={"c"})
        assert cache.invalidate_tables({"c"}) == 2
        assert cache.stats.invalidations_partial == 2
        assert cache.get("ab") == 1
        assert "bc" not in cache
        assert "c" not in cache

    def test_untagged_entries_are_dropped_conservatively(self):
        cache = PlanCache(capacity=8)
        cache.put("unknown", 1)  # no provenance recorded
        cache.put("ab", 2, tables={"a", "b"})
        assert cache.invalidate_tables({"z"}) == 1
        assert "unknown" not in cache
        assert cache.get("ab") == 2

    def test_no_overlap_drops_nothing(self):
        cache = PlanCache(capacity=8)
        cache.put("ab", 1, tables={"a", "b"})
        assert cache.invalidate_tables({"x", "y"}) == 0
        assert cache.stats.invalidations_partial == 0
        assert cache.get("ab") == 1
