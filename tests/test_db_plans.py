"""Tests for repro.db.plans: join trees and physical nodes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.plans import (
    HashAggregate,
    HashJoin,
    IndexScan,
    JoinTree,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    explain,
)
from repro.db.predicates import ColumnRef, CompareOp, Comparison, JoinPredicate
from repro.db.query import AggregateSpec


class TestJoinTree:
    def test_leaf(self):
        t = JoinTree.leaf("a")
        assert t.is_leaf
        assert t.aliases == frozenset(["a"])
        assert t.height == 0
        assert t.render() == "a"

    def test_join(self):
        t = JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b"))
        assert not t.is_leaf
        assert t.aliases == frozenset(["a", "b"])
        assert t.height == 1
        assert t.render() == "(a JOIN b)"

    def test_overlapping_children_rejected(self):
        a = JoinTree.leaf("a")
        with pytest.raises(ValueError):
            JoinTree.join(a, JoinTree.join(a, JoinTree.leaf("b")))

    def test_leaf_with_children_rejected(self):
        with pytest.raises(ValueError):
            JoinTree(alias="a", left=JoinTree.leaf("b"), right=JoinTree.leaf("c"))

    def test_join_missing_child_rejected(self):
        with pytest.raises(ValueError):
            JoinTree(left=JoinTree.leaf("a"))

    def test_left_deep(self):
        t = JoinTree.left_deep(["a", "b", "c", "d"])
        assert t.height == 3
        assert t.render() == "(((a JOIN b) JOIN c) JOIN d)"

    def test_leaf_depths(self):
        t = JoinTree.join(
            JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b")),
            JoinTree.leaf("c"),
        )
        assert t.leaf_depths() == {"a": 2, "b": 2, "c": 1}

    def test_iter_joins_bottom_up(self):
        inner = JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b"))
        outer = JoinTree.join(inner, JoinTree.leaf("c"))
        joins = list(outer.iter_joins())
        assert joins == [inner, outer]

    @given(st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=8, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_left_deep_invariants(self, aliases):
        t = JoinTree.left_deep(aliases)
        assert t.aliases == frozenset(aliases)
        assert t.n_leaves == len(aliases)
        depths = t.leaf_depths()
        assert set(depths) == set(aliases)
        assert max(depths.values()) == t.height or t.is_leaf


def scan(alias):
    return SeqScan(alias, alias)


def jp(a, b):
    return JoinPredicate(ColumnRef(a, "id"), ColumnRef(b, "id"))


class TestPhysicalNodes:
    def test_seq_scan_label(self):
        s = SeqScan("a", "users", (Comparison(ColumnRef("a", "x"), CompareOp.EQ, 1),))
        assert "SeqScan" in s.label()
        assert "a.x = 1" in s.label()

    def test_index_scan_validation(self):
        pred = Comparison(ColumnRef("a", "id"), CompareOp.EQ, 5)
        scan_node = IndexScan("a", "users", "id", pred)
        assert scan_node.kind == "btree"
        with pytest.raises(ValueError):
            IndexScan("a", "users", "other", pred)
        with pytest.raises(ValueError):
            IndexScan("a", "users", "id", pred, kind="bitmap")

    def test_join_alias_union(self):
        j = HashJoin(scan("a"), scan("b"), (jp("a", "b"),))
        assert j.aliases == frozenset(["a", "b"])
        assert j.children == (j.left, j.right)

    def test_join_overlap_rejected(self):
        with pytest.raises(ValueError):
            HashJoin(scan("a"), scan("a"), (jp("a", "b"),))

    def test_hash_join_needs_predicate(self):
        with pytest.raises(ValueError):
            HashJoin(scan("a"), scan("b"), ())
        with pytest.raises(ValueError):
            MergeJoin(scan("a"), scan("b"), ())

    def test_nested_loop_cross_product_allowed(self):
        j = NestedLoopJoin(scan("a"), scan("b"), ())
        assert j.is_cross_product
        assert "cross product" in j.label()

    def test_disconnected_predicate_rejected(self):
        with pytest.raises(ValueError):
            HashJoin(scan("a"), scan("b"), (jp("a", "c"),))

    def test_iter_nodes_children_first(self):
        j = HashJoin(scan("a"), scan("b"), (jp("a", "b"),))
        agg = HashAggregate(j, (), (AggregateSpec("count", None),))
        nodes = list(agg.iter_nodes())
        assert nodes[-1] is agg
        assert nodes[0] is j.left

    def test_explain_shape(self):
        j = HashJoin(scan("a"), scan("b"), (jp("a", "b"),))
        text = explain(j)
        lines = text.splitlines()
        assert lines[0].startswith("-> HashJoin")
        assert lines[1].strip().startswith("-> SeqScan")
        assert len(lines) == 3

    def test_explain_annotations(self):
        j = NestedLoopJoin(scan("a"), scan("b"), ())
        text = explain(j, annotate=lambda n: "note")
        assert text.count("[note]") == 3
