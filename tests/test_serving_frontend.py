"""Tests for the concurrent serving front end: batch-or-timeout
flushing, consistent-hash sharding, lifecycle (drain/close), and the
per-shard counter rollup."""

import threading
import time

import numpy as np
import pytest

from repro.core.featurize import QueryFeaturizer
from repro.db.query import parse_query
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner
from repro.rl.ppo import PPOAgent
from repro.serving import (
    FrontEndConfig,
    HashRing,
    OptimizerService,
    ServingConfig,
    ServingFrontEnd,
    fingerprint,
)

CHAIN = "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id"
CHAIN_RENAMED = (
    "SELECT * FROM a AS u, b AS v, c AS w2 WHERE w2.b_id = v.id AND v.a_id = u.id"
)
BC = "SELECT * FROM b, c WHERE b.id = c.b_id"
AB = "SELECT * FROM a, b WHERE a.id = b.a_id"


@pytest.fixture(scope="module")
def featurizer(small_db):
    return QueryFeaturizer(small_db.schema, max_relations=3)


@pytest.fixture(scope="module")
def agent(small_db, featurizer):
    return PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(3)
    )


def make_frontend(small_db, agent, featurizer, **config_kwargs):
    config_kwargs.setdefault("n_shards", 2)
    config_kwargs.setdefault("max_batch", 4)
    config_kwargs.setdefault("max_delay_ms", 25.0)
    return ServingFrontEnd.build(
        small_db,
        agent,
        featurizer=featurizer,
        serving_config=ServingConfig(regression_threshold=1.5),
        config=FrontEndConfig(**config_kwargs),
    )


class TestHashRing:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)

    def test_deterministic_and_in_range(self):
        ring = HashRing(4)
        keys = [f"key-{i}" for i in range(200)]
        first = [ring.shard_for(k) for k in keys]
        assert first == [HashRing(4).shard_for(k) for k in keys]
        assert all(0 <= shard < 4 for shard in first)

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(4, replicas=128)
        spread = ring.spread(f"key-{i}" for i in range(2000))
        assert set(spread) == {0, 1, 2, 3}
        assert min(spread.values()) > 200  # no starved shard

    def test_adding_a_shard_moves_few_keys(self):
        keys = [f"key-{i}" for i in range(1000)]
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(
            before.shard_for(k) != after.shard_for(k) for k in keys
        )
        # Consistent hashing moves ~1/5 of keys; modulo hashing ~4/5.
        assert moved < 500

    def test_single_shard_takes_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(f"k{i}") for i in range(50)} == {0}


class TestBatchOrTimeout:
    def test_full_batch_flushes_without_waiting_for_deadline(
        self, small_db, agent, featurizer
    ):
        # A generous deadline that would blow the test budget if waited on:
        # four submissions == max_batch must flush immediately instead.
        frontend = make_frontend(
            small_db, agent, featurizer, max_batch=4, max_delay_ms=1900.0
        )
        with frontend:
            queries = [parse_query(BC, f"bc{i}") for i in range(4)]
            start = time.monotonic()
            futures = [frontend.submit(q) for q in queries]
            served = [f.result(timeout=1.8) for f in futures]
            elapsed = time.monotonic() - start
        assert elapsed < 1.8
        assert [s.query_name for s in served] == [q.name for q in queries]
        assert frontend.stats.flushes_size >= 1

    def test_lone_query_flushed_within_deadline_without_filler(
        self, small_db, agent, featurizer
    ):
        frontend = make_frontend(
            small_db, agent, featurizer, max_batch=64, max_delay_ms=50.0
        )
        with frontend:
            future = frontend.submit(parse_query(CHAIN, "lone"))
            served = future.result(timeout=1.8)
        assert served.query_name == "lone"
        assert frontend.stats.flushes_deadline == 1
        assert frontend.stats.flushes_size == 0
        # The flush carried exactly the one query — no filler batch.
        assert frontend.stats.occupancy_sum == 1

    def test_served_plans_match_synchronous_service(
        self, small_db, agent, featurizer
    ):
        queries = [
            parse_query(CHAIN, "chain"),
            parse_query(BC, "bc"),
            parse_query(AB, "ab"),
        ]
        sync = OptimizerService(
            small_db,
            agent,
            planner=Planner(small_db, cost_memo=SubPlanCostMemo()),
            featurizer=featurizer,
            config=ServingConfig(regression_threshold=1.5),
        )
        expected = {s.query_name: s for s in sync.optimize_batch(queries)}
        frontend = make_frontend(small_db, agent, featurizer)
        with frontend:
            served = frontend.optimize_batch(
                [parse_query(CHAIN, "chain"), parse_query(BC, "bc"),
                 parse_query(AB, "ab")],
                timeout=2.0,
            )
        for plan in served:
            assert plan.plan.label() == expected[plan.query_name].plan.label()
            assert plan.cost == expected[plan.query_name].cost

    def test_optimize_batch_returns_submit_order(self, small_db, agent, featurizer):
        frontend = make_frontend(small_db, agent, featurizer, max_batch=3)
        with frontend:
            names = [f"bc{i}" for i in range(7)]
            served = frontend.optimize_batch(
                [parse_query(BC, name) for name in names], timeout=2.0
            )
        assert [s.query_name for s in served] == names


class TestSharding:
    def test_fingerprint_equivalent_queries_share_a_shard_cache(
        self, small_db, agent, featurizer
    ):
        frontend = make_frontend(small_db, agent, featurizer, n_shards=3)
        with frontend:
            first = frontend.optimize(parse_query(CHAIN, "one"), timeout=2.0)
            second = frontend.optimize(parse_query(CHAIN_RENAMED, "two"), timeout=2.0)
        assert first.fingerprint == second.fingerprint
        assert second.source == "cache"
        counters = frontend.counters()
        # Both requests landed on the same shard; the others stayed idle.
        shard_loads = sorted(
            counters[f"shard{k}_requests"] for k in range(3)
        )
        assert shard_loads == [0, 0, 2]

    def test_distinct_queries_route_by_ring(self, small_db, agent, featurizer):
        frontend = make_frontend(small_db, agent, featurizer, n_shards=2)
        ring = frontend.ring
        queries = [parse_query(BC, "bc"), parse_query(AB, "ab"),
                   parse_query(CHAIN, "chain")]
        expected = {q.name: ring.shard_for(fingerprint(q)) for q in queries}
        with frontend:
            frontend.optimize_batch(queries, timeout=2.0)
        counters = frontend.counters()
        for shard in range(2):
            want = sum(1 for s in expected.values() if s == shard)
            assert counters[f"shard{shard}_requests"] == want


class TestLifecycle:
    def test_submit_after_close_raises(self, small_db, agent, featurizer):
        frontend = make_frontend(small_db, agent, featurizer)
        frontend.close()
        frontend.close()  # idempotent
        with pytest.raises(RuntimeError, match="close"):
            frontend.submit(parse_query(BC, "late"))

    def test_every_future_resolves_under_close_mid_burst(
        self, small_db, agent, featurizer
    ):
        frontend = make_frontend(
            small_db, agent, featurizer, max_batch=4, max_delay_ms=5.0
        )
        futures = []
        futures_lock = threading.Lock()
        rejected = []

        def burst(k):
            for i in range(10):
                try:
                    future = frontend.submit(parse_query(BC, f"q{k}-{i}"))
                except RuntimeError:
                    rejected.append((k, i))
                    return
                with futures_lock:
                    futures.append(future)

        threads = [threading.Thread(target=burst, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        frontend.close(timeout=5.0)
        for t in threads:
            t.join(timeout=1.0)
        # Everything accepted before close resolved to a real plan.
        for future in futures:
            assert future.result(timeout=1.0).cost > 0
        assert len(futures) + len(rejected) == 40

    def test_drain_waits_for_inflight(self, small_db, agent, featurizer):
        frontend = make_frontend(
            small_db, agent, featurizer, max_batch=64, max_delay_ms=1500.0
        )
        with frontend:
            futures = [
                frontend.submit(parse_query(BC, f"bc{i}")) for i in range(3)
            ]
            # drain() must force the flush immediately (not wait 1.5s).
            start = time.monotonic()
            frontend.drain(timeout=1.9)
            assert time.monotonic() - start < 1.9
            for future in futures:
                assert future.done()

    def test_cancelled_future_is_skipped_not_fatal(
        self, small_db, agent, featurizer
    ):
        frontend = make_frontend(
            small_db, agent, featurizer, max_batch=64, max_delay_ms=150.0
        )
        with frontend:
            doomed = frontend.submit(parse_query(BC, "doomed"))
            assert doomed.cancel()  # still pending: cancellable
            # The worker must survive the cancelled future and keep
            # serving the shard.
            assert frontend.optimize(parse_query(BC, "ok"), timeout=2.0).cost > 0
            frontend.drain(timeout=1.9)
        assert doomed.cancelled()

    def test_refresh_statistics_reaches_every_shard(
        self, small_db, agent, featurizer
    ):
        frontend = make_frontend(small_db, agent, featurizer, n_shards=2)
        with frontend:
            frontend.optimize_batch(
                [parse_query(CHAIN, "chain"), parse_query(BC, "bc"),
                 parse_query(AB, "ab")],
                timeout=2.0,
            )
            # Partial refresh of table c: the a-b plan survives in its
            # shard's cache, the c-touching plans are evicted everywhere.
            frontend.refresh_statistics(sample_size=500, tables=["c"])
            assert frontend.optimize(
                parse_query(AB, "ab2"), timeout=2.0
            ).source == "cache"
            assert frontend.optimize(
                parse_query(BC, "bc2"), timeout=2.0
            ).source != "cache"
        counters = frontend.counters()
        assert counters["cache_invalidations_partial"] == 2

    def test_worker_error_resolves_future_with_exception(
        self, small_db, agent, featurizer
    ):
        frontend = make_frontend(small_db, agent, featurizer)
        with frontend:
            # A table the schema does not know: the shard worker fails
            # while serving, and the failure must land in the future
            # rather than hanging the caller.
            bad = parse_query("SELECT * FROM nope WHERE nope.x > 1", "bad")
            future = frontend.submit(bad)
            with pytest.raises(Exception):
                future.result(timeout=2.0)
            # The front end keeps serving after a poisoned batch.
            assert frontend.optimize(parse_query(BC, "ok"), timeout=2.0).cost > 0


class TestCountersRollup:
    def test_rollup_sums_shards_and_recomputes_rates(
        self, small_db, agent, featurizer
    ):
        frontend = make_frontend(small_db, agent, featurizer, n_shards=2)
        with frontend:
            queries = [parse_query(BC, "bc"), parse_query(AB, "ab"),
                       parse_query(CHAIN, "chain")]
            frontend.optimize_batch(queries, timeout=2.0)
            frontend.optimize_batch(
                [parse_query(BC, "bc2"), parse_query(AB, "ab2")], timeout=2.0
            )
        counters = frontend.counters()
        assert counters["requests"] == 5
        assert counters["frontend_submitted"] == 5
        assert counters["served_from_cache"] == 2
        lookups = counters["cache_hits"] + counters["cache_misses"]
        assert counters["cache_hit_rate"] == round(
            counters["cache_hits"] / lookups, 4
        )
        assert counters["frontend_shards"] == 2
        assert (
            counters["shard0_requests"] + counters["shard1_requests"] == 5
        )

    def test_latency_summary_covers_queueing(self, small_db, agent, featurizer):
        frontend = make_frontend(small_db, agent, featurizer)
        with frontend:
            frontend.optimize(parse_query(BC, "bc"), timeout=2.0)
        summary = frontend.latency_summary()
        assert summary["p95_ms"] >= summary["p50_ms"] > 0.0

    def test_experience_drains_across_shards(self, small_db, agent, featurizer):
        frontend = make_frontend(small_db, agent, featurizer, n_shards=2)
        with frontend:
            frontend.optimize_batch(
                [parse_query(CHAIN, "chain"), parse_query(BC, "bc")], timeout=2.0
            )
            episodes = frontend.drain_experience()
        assert len(episodes) == 2
        assert frontend.drain_experience() == []
