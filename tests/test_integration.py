"""Cross-module integration tests on the JOB-lite stack.

These exercise the exact paths the experiments use: generate queries,
optimize them with the expert, execute the plans, replay expert
decisions through the environments, and run short end-to-end training
loops — asserting invariants that individual unit tests cannot see.
"""

import numpy as np
import pytest

from repro.core import (
    ExpertBaseline,
    JoinOrderEnv,
    Trainer,
    TrainingConfig,
    make_agent,
)
from repro.core.envs import FullPlanEnv, Stage, StagedPlanEnv
from repro.core.rewards import CostModelReward, LatencyReward
from repro.optimizer.planner import Planner
from repro.rl.env import rollout
from repro.workloads import make_imdb_database
from repro.workloads.generator import RandomQueryGenerator, Workload
from repro.workloads.job import job_lite_query


@pytest.fixture(scope="module")
def imdb():
    return make_imdb_database(scale=0.02, seed=13, sample_size=5000)


@pytest.fixture(scope="module")
def gen(imdb):
    return RandomQueryGenerator(imdb)


class TestExpertPipeline:
    def test_random_queries_optimize_and_execute(self, imdb, gen):
        planner = Planner(imdb)
        rng = np.random.default_rng(0)
        for i in range(8):
            query = gen.generate(rng, int(rng.integers(2, 8)), name=f"int-{i}")
            result = planner.optimize(query)
            executed = imdb.execute_plan(result.plan, query, budget_ms=1e8)
            assert not executed.timed_out, query.sql()
            assert executed.latency_ms > 0

    def test_estimates_track_actuals_within_reason(self, imdb, gen):
        """Per-scan estimates should be within a modest factor of the
        truth (joins may diverge wildly; scans must not)."""
        rng = np.random.default_rng(1)
        planner = Planner(imdb)
        for i in range(5):
            query = gen.generate(rng, 3, name=f"est-{i}", aggregate_prob=0.0)
            cards = imdb.cardinalities(query)
            result = planner.optimize(query)
            executed = imdb.execute_plan(result.plan, query, budget_ms=1e8)
            for node in result.plan.iter_nodes():
                if not node.children:  # scan
                    est = cards.plan_rows(node)
                    actual = executed.actual_rows(node)
                    if actual is not None and actual > 10:
                        assert est / actual < 50 and actual / est < 50

    def test_geqo_and_dp_agree_on_small_queries(self, imdb):
        dp_planner = Planner(imdb, geqo_threshold=20)
        geqo_planner = Planner(imdb, geqo_threshold=2)
        query = job_lite_query("1a")
        dp_cost = dp_planner.optimize(query).cost.total
        geqo_cost = geqo_planner.optimize(query).cost.total
        assert geqo_cost <= dp_cost * 3  # GEQO is decent on small queries

    def test_expert_deterministic(self, imdb):
        planner = Planner(imdb, geqo_threshold=4)
        query = job_lite_query("12a")  # GEQO regime
        c1 = planner.optimize(query).cost.total
        c2 = planner.optimize(query).cost.total
        assert c1 == c2


class TestEnvironmentExpertReplay:
    @pytest.mark.parametrize(
        "stages",
        [
            Stage.JOIN_ORDER,
            Stage.JOIN_ORDER | Stage.ACCESS_PATH,
            Stage.JOIN_ORDER | Stage.ACCESS_PATH | Stage.JOIN_OPERATOR,
            Stage.all(),
        ],
        ids=["join", "join+access", "join+access+op", "all"],
    )
    def test_expert_actions_valid_across_job_families(self, imdb, stages):
        queries = [job_lite_query(n) for n in ("1a", "3b", "6c", "8d")]
        workload = Workload("replay", queries)
        env = StagedPlanEnv(imdb, workload, stages=stages)
        for query in queries:
            actions = env.expert_actions(query)
            state, mask = env.reset(query)
            done = False
            for action in actions:
                assert mask[action], f"{query.name}: expert action invalid"
                result = env.step(action)
                state, mask = result.state, result.mask
                done = result.done
            assert done, f"{query.name}: expert episode incomplete"

    def test_full_env_expert_replay_near_expert_cost(self, imdb):
        queries = [job_lite_query(n) for n in ("2a", "5b")]
        env = FullPlanEnv(imdb, Workload("r", queries))
        planner = env.planner
        for query in queries:
            actions = env.expert_actions(query)
            state, mask = env.reset(query)
            for action in actions:
                result = env.step(action)
                state, mask = result.state, result.mask
            replayed = result.info["outcome"].cost
            expert = planner.optimize(query).cost.total
            assert replayed <= expert * 1.5


class TestEndToEndTraining:
    def test_training_deterministic_given_seed(self, imdb):
        queries = [job_lite_query("2a"), job_lite_query("3a")]
        workload = Workload("det", queries)

        def run():
            rng = np.random.default_rng(99)
            baseline = ExpertBaseline(imdb)
            env = JoinOrderEnv(
                imdb, workload,
                reward_source=CostModelReward(imdb, "relative", baseline),
                rng=rng,
            )
            agent = make_agent(env, rng, "reinforce")
            trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=4))
            return trainer.run(16).relative_costs()

        assert np.array_equal(run(), run())

    def test_latency_reward_training_runs(self, imdb):
        queries = [job_lite_query("2a"), job_lite_query("4a")]
        workload = Workload("lat", queries)
        rng = np.random.default_rng(5)
        baseline = ExpertBaseline(imdb)
        env = JoinOrderEnv(
            imdb, workload,
            reward_source=LatencyReward(
                imdb, "relative", baseline, budget_factor=50.0
            ),
            rng=rng,
        )
        agent = make_agent(env, rng, "ppo")
        trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=4))
        log = trainer.run(12)
        assert all(r.latency_ms is not None for r in log.records)
        assert all(r.expert_latency_ms is not None for r in log.records)

    def test_short_training_improves_over_random_start(self, imdb, gen):
        rng = np.random.default_rng(3)
        workload = gen.workload(rng, size=10, relation_range=(4, 6), name="imp")
        baseline = ExpertBaseline(imdb)
        env = JoinOrderEnv(
            imdb, workload,
            reward_source=CostModelReward(imdb, "relative", baseline),
            rng=rng,
            forbid_cross_products=False,
        )
        agent = make_agent(env, rng, "ppo")
        trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))
        # 400 episodes finish in under a second with lockstep collection
        # and give the improvement signal a comfortable margin over the
        # episode-to-episode noise of a 10-query workload.
        log = trainer.run(400)
        rel = log.relative_costs()
        assert np.median(rel[-60:]) < np.median(rel[:60])


class TestBudgetMonotonicity:
    def test_smaller_budget_times_out_whenever_larger_does(self, imdb, gen):
        from repro.optimizer.join_search import random_join_tree
        from repro.optimizer.physical import build_physical_plan

        rng = np.random.default_rng(8)
        for i in range(5):
            query = gen.generate(rng, 5, name=f"bud-{i}", aggregate_prob=0.0)
            tree = random_join_tree(query, rng, avoid_cross_products=False)
            plan = build_physical_plan(tree, query, imdb)
            small = imdb.execute_plan(plan, query, budget_ms=0.5)
            large = imdb.execute_plan(plan, query, budget_ms=1e9)
            if large.timed_out:
                assert small.timed_out
            if not small.timed_out:
                assert not large.timed_out
                assert small.latency_ms == large.latency_ms
