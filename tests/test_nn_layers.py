"""Unit and gradient-check tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential, Tanh
from repro.nn.initializers import he_init, xavier_init, zeros_init


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestInitializers:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_init(100, 50, rng)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.all(np.abs(w) <= limit)

    def test_he_statistics(self):
        rng = np.random.default_rng(0)
        w = he_init(1000, 200, rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 5e-3

    def test_zeros(self):
        w = zeros_init(3, 4, np.random.default_rng(0))
        assert not w.any()

    @pytest.mark.parametrize("fan_in,fan_out", [(0, 5), (5, 0), (-1, 3)])
    def test_bad_dims_rejected(self, fan_in, fan_out):
        with pytest.raises(ValueError):
            xavier_init(fan_in, fan_out, np.random.default_rng(0))


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        out = layer.forward(np.ones((2, 4)))
        assert out.shape == (2, 3)

    def test_forward_1d_promoted(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        assert layer.forward(np.ones(4)).shape == (1, 3)

    def test_forward_wrong_width_raises(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 5)))

    def test_backward_before_forward_raises(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 3)))

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        layer = Linear(5, 4, rng)
        x = rng.normal(size=(3, 5))
        target = rng.normal(size=(3, 4))

        def loss():
            out = layer.forward(x)
            return 0.5 * float(((out - target) ** 2).sum())

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out - target)
        num = numerical_grad(loss, layer.weight)
        assert np.allclose(layer.grads["weight"], num, atol=1e-5)

    def test_bias_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        layer = Linear(5, 4, rng)
        x = rng.normal(size=(3, 5))
        target = rng.normal(size=(3, 4))

        def loss():
            out = layer.forward(x)
            return 0.5 * float(((out - target) ** 2).sum())

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out - target)
        num = numerical_grad(loss, layer.bias)
        assert np.allclose(layer.grads["bias"], num, atol=1e-5)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(3)
        layer = Linear(5, 4, rng)
        x = rng.normal(size=(2, 5))
        target = rng.normal(size=(2, 4))

        def loss():
            out = layer.forward(x)
            return 0.5 * float(((out - target) ** 2).sum())

        out = layer.forward(x)
        grad_in = layer.backward(out - target)
        num = numerical_grad(loss, x)
        assert np.allclose(grad_in, num, atol=1e-5)

    def test_grad_accumulates_until_zeroed(self):
        rng = np.random.default_rng(4)
        layer = Linear(3, 2, rng)
        x = np.ones((1, 3))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.grads["weight"].copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        assert np.allclose(layer.grads["weight"], 2 * first)
        layer.zero_grad()
        assert not layer.grads["weight"].any()

    def test_grow_outputs_preserves_existing(self):
        rng = np.random.default_rng(5)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        before = layer.forward(x).copy()
        layer.grow_outputs(3, rng)
        after = layer.forward(x)
        assert after.shape == (4, 5)
        assert np.allclose(after[:, :2], before)
        assert layer.out_features == 5

    def test_grow_outputs_rejects_nonpositive(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.grow_outputs(0, np.random.default_rng(0))


class TestActivations:
    def test_relu_forward(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_gates(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 0.5]]))
        grad = relu.backward(np.array([[1.0, 1.0]]))
        assert np.allclose(grad, [[0.0, 1.0]])

    def test_tanh_gradient_matches_numerical(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 3))
        tanh = Tanh()

        def loss():
            return float(np.tanh(x).sum())

        tanh.forward(x)
        grad = tanh.backward(np.ones((2, 3)))
        num = numerical_grad(loss, x)
        assert np.allclose(grad, num, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))
        with pytest.raises(RuntimeError):
            Tanh().backward(np.ones((1, 2)))


class TestSequential:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_end_to_end_gradient(self):
        rng = np.random.default_rng(7)
        net = Sequential([Linear(4, 8, rng), Tanh(), Linear(8, 2, rng)])
        x = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 2))

        def loss():
            return 0.5 * float(((net.forward(x) - target) ** 2).sum())

        net.zero_grad()
        out = net.forward(x)
        net.backward(out - target)
        for name, param in net.params.items():
            num = numerical_grad(loss, param)
            assert np.allclose(net.grads[name], num, atol=1e-4), name

    def test_param_names_are_namespaced(self):
        rng = np.random.default_rng(8)
        net = Sequential([Linear(2, 2, rng), ReLU(), Linear(2, 1, rng)])
        assert set(net.params) == {"0.weight", "0.bias", "2.weight", "2.bias"}
