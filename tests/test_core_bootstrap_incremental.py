"""Tests for cost-model bootstrapping (§5.2) and incremental learning (§5.3)."""

import numpy as np
import pytest

from repro.core.bootstrap import BootstrapConfig, BootstrapResult, BootstrapTrainer
from repro.core.envs import Stage
from repro.core.incremental import (
    CurriculumPhase,
    IncrementalTrainer,
    flat_curriculum,
    hybrid_curriculum,
    pipeline_curriculum,
    relations_curriculum,
)
from repro.db.query import parse_query
from repro.workloads.generator import Workload


@pytest.fixture(scope="module")
def boot_workload(small_db):
    queries = [
        parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="chain",
        ),
        parse_query("SELECT * FROM b, c WHERE b.id = c.b_id", name="bc"),
    ]
    return Workload("boot", queries)


class TestBootstrapTrainer:
    @pytest.mark.parametrize("mode", ["scaled", "naive", "transfer"])
    def test_two_phase_run(self, small_db, boot_workload, mode):
        config = BootstrapConfig(
            phase1_episodes=24,
            phase2_episodes=12,
            calibration_episodes=4,
            mode=mode,
            batch_size=4,
        )
        trainer = BootstrapTrainer(
            small_db, boot_workload, np.random.default_rng(0), config
        )
        result = trainer.run()
        assert len(result.phase1_log) == 24
        assert len(result.phase2_log) == 12
        # phase 1 never executes; phase 2 always does
        assert all(r.latency_ms is None for r in result.phase1_log.records)
        assert all(r.latency_ms is not None for r in result.phase2_log.records)
        assert len(result.calibration_pairs) == 4

    def test_scaled_mode_keeps_scaler(self, small_db, boot_workload):
        config = BootstrapConfig(
            phase1_episodes=8, phase2_episodes=4, calibration_episodes=3,
            mode="scaled", batch_size=4,
        )
        trainer = BootstrapTrainer(
            small_db, boot_workload, np.random.default_rng(1), config
        )
        result = trainer.run()
        assert result.scaler is not None and result.scaler.fitted

    def test_transfer_mode_copies_trunk(self, small_db, boot_workload):
        config = BootstrapConfig(
            phase1_episodes=8, phase2_episodes=4, calibration_episodes=2,
            mode="transfer", batch_size=4,
        )
        trainer = BootstrapTrainer(
            small_db, boot_workload, np.random.default_rng(2), config
        )
        phase1_agent = trainer.agent
        trainer.trainer.run(config.phase1_episodes)
        scaler, _ = trainer._calibrate()
        trainer._switch_reward(scaler)
        assert trainer.agent is not phase1_agent
        # trunk weights copied at switch time; head freshly initialized
        old_trunk = phase1_agent.policy_net.linear_layers()[0].weight
        new_trunk = trainer.agent.policy_net.linear_layers()[0].weight
        old_head = phase1_agent.policy_net.linear_layers()[-1].weight
        new_head = trainer.agent.policy_net.linear_layers()[-1].weight
        assert np.array_equal(old_trunk, new_trunk)
        assert not np.array_equal(old_head, new_head)

    def test_regression_ratio(self, small_db, boot_workload):
        config = BootstrapConfig(
            phase1_episodes=12, phase2_episodes=12, calibration_episodes=2,
            batch_size=4,
        )
        trainer = BootstrapTrainer(
            small_db, boot_workload, np.random.default_rng(3), config
        )
        result = trainer.run()
        ratio = result.regression_ratio(window=6)
        assert ratio > 0

    def test_regression_ratio_needs_episodes(self):
        from repro.core.trainer import TrainingLog

        result = BootstrapResult(TrainingLog(), TrainingLog(), None, [])
        with pytest.raises(ValueError):
            result.regression_ratio()


class TestCurricula:
    def test_pipeline_curriculum_unlocks_stages(self):
        phases = pipeline_curriculum(episodes_per_phase=10, max_relations=6)
        assert len(phases) == 4
        assert phases[0].stages == Stage.JOIN_ORDER
        assert phases[1].stages == Stage.JOIN_ORDER | Stage.ACCESS_PATH
        assert phases[-1].stages == Stage.all()
        assert all(p.max_relations == 6 for p in phases)

    def test_relations_curriculum_grows_relations(self):
        phases = relations_curriculum(10, relation_steps=(2, 4, 6))
        assert [p.max_relations for p in phases] == [2, 4, 6]
        assert all(p.stages == Stage.all() for p in phases)

    def test_relations_curriculum_rejects_unsorted(self):
        with pytest.raises(ValueError):
            relations_curriculum(10, relation_steps=(4, 2))

    def test_hybrid_grows_both(self):
        phases = hybrid_curriculum(10, final_relations=8)
        assert phases[0].stages == Stage.JOIN_ORDER
        assert phases[0].max_relations == 2
        assert phases[-1].stages == Stage.all()
        assert phases[-1].max_relations == 8
        rel = [p.max_relations for p in phases]
        assert rel == sorted(rel)

    def test_flat_single_phase(self):
        phases = flat_curriculum(50, max_relations=7)
        assert len(phases) == 1
        assert phases[0].stages == Stage.all()

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            CurriculumPhase("bad", Stage.all(), 0, 10)
        with pytest.raises(ValueError):
            CurriculumPhase("bad", Stage.all(), 3, 0)
        with pytest.raises(ValueError):
            CurriculumPhase("bad", Stage.ACCESS_PATH, 3, 10)


class TestIncrementalTrainer:
    def test_runs_pipeline_curriculum(self, small_db):
        trainer = IncrementalTrainer(
            small_db,
            np.random.default_rng(0),
            queries_per_phase=6,
            batch_size=4,
        )
        phases = pipeline_curriculum(episodes_per_phase=6, max_relations=3)
        results = trainer.run(phases)
        assert len(results) == 4
        assert all(len(r.log) == 6 for r in results)
        quality = trainer.final_quality(results, tail=6)
        assert quality > 0

    def test_action_growth_across_phases(self, small_db):
        trainer = IncrementalTrainer(
            small_db,
            np.random.default_rng(1),
            queries_per_phase=4,
            batch_size=4,
            grow_actions=True,
        )
        phases = pipeline_curriculum(episodes_per_phase=4, max_relations=3)
        trainer.run(phases[:1])
        out_after_phase1 = trainer.agent.policy_net.out_features
        trainer.run(phases[1:2])
        out_after_phase2 = trainer.agent.policy_net.out_features
        assert out_after_phase2 == out_after_phase1 + 2  # access-path actions

    def test_no_growth_preallocates_full_action_layer(self, small_db):
        trainer = IncrementalTrainer(
            small_db,
            np.random.default_rng(2),
            queries_per_phase=4,
            batch_size=4,
            grow_actions=False,
        )
        phases = pipeline_curriculum(episodes_per_phase=4, max_relations=3)
        trainer.run(phases[:1])
        first_size = trainer.agent.policy_net.out_features
        trainer.run(phases[1:2])  # must not raise, must not grow
        assert trainer.agent.policy_net.out_features == first_size
        # pre-allocated for all stages: pairs + 2 + 3 + 2
        assert first_size == trainer._featurizer.n_pair_actions + 7

    def test_relations_curriculum_runs(self, small_db):
        trainer = IncrementalTrainer(
            small_db,
            np.random.default_rng(3),
            queries_per_phase=4,
            batch_size=4,
        )
        results = trainer.run(relations_curriculum(4, relation_steps=(2, 3)))
        assert [r.phase.max_relations for r in results] == [2, 3]

    def test_empty_curriculum_rejected(self, small_db):
        trainer = IncrementalTrainer(small_db, np.random.default_rng(4))
        with pytest.raises(ValueError):
            trainer.run([])
