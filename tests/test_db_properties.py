"""Property-based tests for cross-cutting database invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.costmodel import CostModel, CostParams
from repro.db.plans import HashJoin, NestedLoopJoin, SeqScan
from repro.db.predicates import ColumnRef, CompareOp, Comparison
from repro.db.query import parse_query


class TestCostModelProperties:
    @given(st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=20, deadline=None)
    def test_seq_page_cost_monotone(self, small_db, factor):
        query = parse_query("SELECT * FROM c", name="m")
        cards = small_db.cardinalities(query)
        base = CostModel(small_db.schema, small_db.stats, CostParams())
        scaled = CostModel(
            small_db.schema,
            small_db.stats,
            CostParams(seq_page_cost=1.0 * factor),
        )
        plan = SeqScan("c", "c")
        b = base.cost(plan, cards).total
        s = scaled.cost(plan, cards).total
        if factor > 1:
            assert s >= b
        else:
            assert s <= b

    @given(st.integers(0, 39))
    @settings(max_examples=25, deadline=None)
    def test_costs_always_positive_and_ordered(self, small_db, value):
        query = parse_query(f"SELECT * FROM a, b WHERE a.id = b.a_id AND a.x = {value}",
                            name="pos")
        cards = small_db.cardinalities(query)
        model = small_db.cost_model()
        hash_plan = HashJoin(
            SeqScan("a", "a", tuple(query.selections)),
            SeqScan("b", "b"),
            tuple(query.joins),
        )
        nl_plan = NestedLoopJoin(
            SeqScan("a", "a", tuple(query.selections)),
            SeqScan("b", "b"),
            tuple(query.joins),
        )
        h = model.cost(hash_plan, cards)
        n = model.cost(nl_plan, cards)
        assert h.total > 0 and n.total > 0
        assert h.startup <= h.total and n.startup <= n.total


class TestExecutorProperties:
    @given(st.integers(0, 14))
    @settings(max_examples=20, deadline=None)
    def test_adding_predicate_never_increases_rows(self, small_db, z):
        base_q = parse_query("SELECT * FROM b", name="b0")
        narrow_q = parse_query(f"SELECT * FROM b WHERE b.z = {z}", name="b1")
        base = small_db.execute_plan(SeqScan("b", "b"), base_q)
        narrow = small_db.execute_plan(
            SeqScan("b", "b", tuple(narrow_q.selections)), narrow_q
        )
        assert narrow.rows <= base.rows

    @given(st.integers(0, 14))
    @settings(max_examples=20, deadline=None)
    def test_predicate_pushdown_equals_post_filter_count(self, small_db, z):
        """Filter in the scan vs filter after join: same result size."""
        q = parse_query(
            f"SELECT * FROM b, c WHERE b.id = c.b_id AND b.z = {z}", name="pp"
        )
        pushed = HashJoin(
            SeqScan("b", "b", tuple(q.selections)),
            SeqScan("c", "c"),
            tuple(q.joins),
        )
        result = small_db.execute_plan(pushed, q)
        # reference: count via brute force
        from tests.helpers import brute_force_count

        assert result.rows == brute_force_count(small_db, q)

    @given(st.integers(1, 60))
    @settings(max_examples=15, deadline=None)
    def test_latency_scales_with_work(self, small_db, hi):
        """A scan returning more rows never simulates faster than the
        same scan returning fewer (per-tuple charges are additive)."""
        q_small = parse_query(f"SELECT * FROM a WHERE a.id < {hi}", name="s")
        q_big = parse_query(f"SELECT * FROM a WHERE a.id < {hi + 20}", name="b")
        t_small = small_db.execute_plan(
            SeqScan("a", "a", tuple(q_small.selections)), q_small
        ).latency_ms
        t_big = small_db.execute_plan(
            SeqScan("a", "a", tuple(q_big.selections)), q_big
        ).latency_ms
        assert t_small == pytest.approx(t_big)  # same table scan work

    def test_join_commutes_on_rows(self, small_db):
        """Row counts are symmetric in the join inputs (latency isn't)."""
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="sym")
        ab = HashJoin(SeqScan("a", "a"), SeqScan("b", "b"), tuple(q.joins))
        ba = HashJoin(SeqScan("b", "b"), SeqScan("a", "a"), tuple(q.joins))
        assert (
            small_db.execute_plan(ab, q).rows == small_db.execute_plan(ba, q).rows
        )


class TestEstimatorProperties:
    @given(st.integers(0, 39), st.integers(0, 39))
    @settings(max_examples=25, deadline=None)
    def test_conjunction_never_wider_than_single(self, small_db, v1, v2):
        q1 = parse_query(f"SELECT * FROM a WHERE a.x = {v1}", name="one")
        q2 = parse_query(
            f"SELECT * FROM a WHERE a.x = {v1} AND a.y = {v2}", name="two"
        )
        r1 = small_db.cardinalities(q1).scan_rows("a")
        r2 = small_db.cardinalities(q2).scan_rows("a")
        assert r2 <= r1 + 1e-9

    @given(st.integers(2, 100))
    @settings(max_examples=20, deadline=None)
    def test_range_selectivity_monotone_in_width(self, small_db, width):
        from repro.db.statistics import ColumnStats

        stats = small_db.stats["a"].column("x")
        narrow = stats.selectivity_range(0, width // 2)
        wide = stats.selectivity_range(0, width)
        assert narrow <= wide + 1e-9
