"""Tests for the seeded chaos harness: deterministic injection, the
policy-NaN degradation path, the stats-epoch race, and retry exhaustion
under a 100% fault rate."""

import numpy as np
import pytest

from repro.core.featurize import QueryFeaturizer
from repro.db.query import parse_query
from repro.optimizer.memo import SubPlanCostMemo
from repro.optimizer.planner import Planner
from repro.rl.ppo import PPOAgent
from repro.serving import (
    FaultConfig,
    FaultInjector,
    FrontEndConfig,
    InjectedFault,
    OptimizerService,
    RetriesExhausted,
    ServingConfig,
    ServingFrontEnd,
    seeded_uniform,
)

CHAIN = "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id"
BC = "SELECT * FROM b, c WHERE b.id = c.b_id"


@pytest.fixture(scope="module")
def featurizer(small_db):
    return QueryFeaturizer(small_db.schema, max_relations=3)


@pytest.fixture(scope="module")
def agent(small_db, featurizer):
    return PPOAgent(
        featurizer.state_dim, featurizer.n_pair_actions, np.random.default_rng(3)
    )


def make_service(small_db, agent, featurizer, **serving_kwargs):
    serving_kwargs.setdefault("regression_threshold", 1.5)
    return OptimizerService(
        small_db,
        agent.policy,
        planner=Planner(small_db, cost_memo=SubPlanCostMemo()),
        featurizer=featurizer,
        config=ServingConfig(**serving_kwargs),
    )


class TestDeterminism:
    def test_seeded_uniform_stable_and_in_range(self):
        draws = [seeded_uniform(f"key-{i}") for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [seeded_uniform(f"key-{i}") for i in range(200)]
        # Distinct keys decorrelate.
        assert len(set(draws)) == 200

    def test_same_seed_same_schedule(self):
        config = FaultConfig(worker_fault_rate=0.3, latency_spike_rate=0.2, seed=7)
        a, b = FaultInjector(config), FaultInjector(config)
        keys = [f"req{i}a1" for i in range(100)]
        fires_a = [(k, a.fires("worker_fault", k), a.fires("latency_spike", k))
                   for k in keys]
        fires_b = [(k, b.fires("worker_fault", k), b.fires("latency_spike", k))
                   for k in keys]
        assert fires_a == fires_b
        assert a.fired_counts() == b.fired_counts()
        assert a.total_fired() > 0

    def test_different_seed_different_schedule(self):
        keys = [f"req{i}a1" for i in range(200)]
        a = FaultInjector(FaultConfig(worker_fault_rate=0.3, seed=1))
        b = FaultInjector(FaultConfig(worker_fault_rate=0.3, seed=2))
        assert [a.fires("worker_fault", k) for k in keys] != [
            b.fires("worker_fault", k) for k in keys
        ]

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(FaultConfig(seed=5))
        assert not any(
            injector.fires(kind, f"k{i}")
            for i in range(50)
            for kind in ("worker_fault", "latency_spike", "policy_nan", "stats_race")
        )
        assert injector.total_fired() == 0

    def test_retry_draws_fresh_luck(self):
        # Keys include the attempt ordinal, so a retried request is a
        # new draw — a 50% fault rate cannot doom one request forever.
        injector = FaultInjector(FaultConfig(worker_fault_rate=0.5, seed=3))
        outcomes = {
            injector.fires("worker_fault", f"req1a{attempt}")
            for attempt in range(1, 20)
        }
        assert outcomes == {True, False}


class TestPolicyNaN:
    def test_nan_forward_pass_degrades_not_crashes(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        service.install_fault_injector(
            FaultInjector(FaultConfig(policy_nan_rate=1.0, seed=1))
        )
        plan = service.optimize_batch([parse_query(CHAIN, "q1")])[0]
        assert plan.source.startswith("degraded_")
        assert plan.cost > 0
        assert service.stats.degraded_served == 1

    def test_degraded_plans_are_never_cached(self, small_db, agent, featurizer):
        service = make_service(small_db, agent, featurizer)
        service.install_fault_injector(
            FaultInjector(FaultConfig(policy_nan_rate=1.0, seed=1))
        )
        first = service.optimize_batch([parse_query(CHAIN, "q1")])[0]
        second = service.optimize_batch([parse_query(CHAIN, "q2")])[0]
        assert first.source.startswith("degraded_")
        # A repeat of the same fingerprint must degrade again (no cache
        # entry was poisoned by the outage), never serve "cache".
        assert second.source.startswith("degraded_")

    def test_degraded_plan_quality_floor(self, small_db, agent, featurizer):
        # The ladder's answer must be a real, costed plan for the right
        # aliases — not a stub.
        service = make_service(small_db, agent, featurizer)
        service.install_fault_injector(
            FaultInjector(FaultConfig(policy_nan_rate=1.0, seed=1))
        )
        plan = service.optimize_batch([parse_query(BC, "bc")])[0]
        healthy = make_service(small_db, agent, featurizer)
        reference = healthy.optimize_batch([parse_query(BC, "bc")])[0]
        # Same query, expert-quality rung: cost within 2x of the healthy
        # serve (the DP rung is near-exact; greedy is the only floor).
        assert plan.cost <= reference.cost * 2.0


class TestStatsRace:
    def test_epoch_bump_fires_without_changing_plans(
        self, small_db, agent, featurizer
    ):
        chaotic = make_service(small_db, agent, featurizer)
        chaotic.install_fault_injector(
            FaultInjector(FaultConfig(stats_race_rate=1.0, seed=2))
        )
        healthy = make_service(small_db, agent, featurizer)
        before = small_db.stats_epoch
        noisy = chaotic.optimize_batch(
            [parse_query(CHAIN, "q1"), parse_query(BC, "q2")]
        )
        clean = healthy.optimize_batch(
            [parse_query(CHAIN, "q1"), parse_query(BC, "q2")]
        )
        # The race fired (epoch moved) ...
        assert small_db.stats_epoch > before
        # ... but statistics were untouched, so plans are identical.
        for a, b in zip(noisy, clean):
            assert a.plan.label() == b.plan.label()
            assert a.cost == b.cost


class TestWorkerFaults:
    def test_rate_one_exhausts_retries(self, small_db, agent, featurizer):
        frontend = ServingFrontEnd.build(
            small_db,
            agent,
            featurizer=featurizer,
            serving_config=ServingConfig(regression_threshold=1.5),
            config=FrontEndConfig(
                n_shards=1,
                max_batch=4,
                max_delay_ms=5.0,
                max_attempts=2,
                backoff_base_ms=1.0,
                supervise=False,
            ),
        )
        frontend.install_fault_injector(
            FaultInjector(FaultConfig(worker_fault_rate=1.0, seed=4))
        )
        with frontend:
            future = frontend.submit(parse_query(BC, "doomed"))
            with pytest.raises(RetriesExhausted) as excinfo:
                future.result(timeout=5.0)
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert excinfo.value.attempts == 2
        assert frontend.stats.retries == 1
        assert frontend.stats.retries_exhausted == 1
        assert frontend._outstanding == set()

    def test_five_percent_faults_all_requests_resolve(
        self, small_db, agent, featurizer
    ):
        frontend = ServingFrontEnd.build(
            small_db,
            agent,
            featurizer=featurizer,
            serving_config=ServingConfig(regression_threshold=1.5),
            config=FrontEndConfig(
                n_shards=2,
                max_batch=8,
                max_delay_ms=5.0,
                backoff_base_ms=1.0,
                backoff_cap_ms=5.0,
            ),
        )
        frontend.install_fault_injector(
            FaultInjector(FaultConfig(worker_fault_rate=0.05, seed=11))
        )
        with frontend:
            futures = [
                frontend.submit(parse_query(BC, f"q{i}")) for i in range(40)
            ]
            served = [f.result(timeout=10.0) for f in futures]
        assert all(plan.cost > 0 for plan in served)
        # At 5% over 40 requests the schedule fires at least once, and
        # every hit was absorbed by a retry.
        assert frontend.fault_injector.fired_counts()["worker_fault"] >= 1
        assert frontend.stats.retries >= 1
        assert frontend.stats.retries_exhausted == 0
        assert frontend._outstanding == set()
