"""Tests for repro.optimizer.physical and repro.optimizer.planner."""

import pytest

from repro.db.plans import (
    HashJoin,
    IndexScan,
    JoinTree,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
)
from repro.db.query import parse_query
from repro.optimizer.physical import (
    access_path_candidates,
    build_physical_plan,
    choose_access_path,
    choose_aggregate_operator,
    choose_join_operator,
    join_operator_candidates,
)
from repro.optimizer.planner import Planner
from tests.helpers import brute_force_count


@pytest.fixture()
def chain_query(small_db):
    q = parse_query(
        "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
        name="chain",
    )
    q.validate_against(small_db.schema)
    return q


class TestAccessPaths:
    def test_seq_scan_always_candidate(self, small_db):
        q = parse_query("SELECT * FROM a", name="q")
        cands = access_path_candidates("a", q, small_db)
        assert any(isinstance(c, SeqScan) for c in cands)
        assert len(cands) == 1  # no predicates -> no index paths

    def test_index_candidates_on_indexed_predicate(self, small_db):
        q = parse_query("SELECT * FROM b WHERE b.a_id = 3", name="q")
        cands = access_path_candidates("b", q, small_db)
        kinds = {c.kind for c in cands if isinstance(c, IndexScan)}
        assert kinds == {"btree", "hash"}

    def test_range_predicate_btree_only(self, small_db):
        q = parse_query("SELECT * FROM b WHERE b.a_id > 3", name="q")
        cands = access_path_candidates("b", q, small_db)
        kinds = [c.kind for c in cands if isinstance(c, IndexScan)]
        assert kinds == ["btree"]

    def test_unindexed_predicate_no_index_path(self, small_db):
        q = parse_query("SELECT * FROM a WHERE a.x = 1", name="q")
        cands = access_path_candidates("a", q, small_db)
        assert all(isinstance(c, SeqScan) for c in cands)

    def test_choose_access_path_selective(self, medium_db):
        q = parse_query("SELECT * FROM big WHERE big.id = 7", name="q")
        chosen = choose_access_path(
            "big", q, medium_db, medium_db.cost_model(), medium_db.cardinalities(q)
        )
        assert isinstance(chosen, IndexScan)

    def test_chosen_paths_execute_identically(self, small_db):
        q = parse_query("SELECT * FROM b WHERE b.a_id = 3", name="q")
        cands = access_path_candidates("b", q, small_db)
        counts = {small_db.execute_plan(c, q).rows for c in cands}
        assert len(counts) == 1


class TestJoinOperators:
    def test_cross_product_only_nested_loop(self, small_db):
        left = SeqScan("a", "a")
        right = SeqScan("c", "c")
        cands = join_operator_candidates(left, right, ())
        assert len(cands) == 1
        assert isinstance(cands[0], NestedLoopJoin)

    def test_equi_join_all_operators(self, small_db, chain_query):
        left = SeqScan("a", "a")
        right = SeqScan("b", "b")
        preds = tuple(chain_query.joins_between(["a"], ["b"]))
        cands = join_operator_candidates(left, right, preds)
        types = {type(c) for c in cands}
        assert types == {HashJoin, MergeJoin, NestedLoopJoin}
        assert len(cands) == 4  # both hash build orders

    def test_choose_join_operator_prefers_hash_at_scale(self, small_db, chain_query):
        left = SeqScan("b", "b")
        right = SeqScan("c", "c")
        preds = tuple(chain_query.joins_between(["b"], ["c"]))
        chosen = choose_join_operator(
            left, right, preds, small_db.cost_model(),
            small_db.cardinalities(chain_query),
        )
        assert isinstance(chosen, (HashJoin, MergeJoin))


class TestAggregateChoice:
    def test_no_aggregate_passthrough(self, small_db):
        q = parse_query("SELECT * FROM a", name="q")
        child = SeqScan("a", "a")
        assert (
            choose_aggregate_operator(
                child, q, small_db.cost_model(), small_db.cardinalities(q)
            )
            is child
        )

    def test_aggregate_wrapped(self, small_db):
        q = parse_query("SELECT COUNT(*) FROM a", name="q")
        child = SeqScan("a", "a")
        plan = choose_aggregate_operator(
            child, q, small_db.cost_model(), small_db.cardinalities(q)
        )
        assert plan is not child
        assert plan.children == (child,)


class TestBuildPhysicalPlan:
    def test_all_predicates_attached(self, small_db, chain_query):
        tree = JoinTree.left_deep(["a", "b", "c"])
        plan = build_physical_plan(tree, chain_query, small_db)
        attached = []
        for node in plan.iter_nodes():
            if hasattr(node, "predicates") and not isinstance(node, (SeqScan, IndexScan)):
                attached.extend(node.predicates)
        assert len(attached) == len(chain_query.joins)

    def test_pinned_access_path_respected(self, small_db, chain_query):
        tree = JoinTree.left_deep(["a", "b", "c"])
        pinned = SeqScan("a", "a", tuple(chain_query.selections_for("a")))
        plan = build_physical_plan(
            tree, chain_query, small_db, access_paths={"a": pinned}
        )
        scans = [n for n in plan.iter_nodes() if isinstance(n, SeqScan)]
        assert any(n is pinned for n in scans)

    def test_pinned_join_operator_respected(self, small_db, chain_query):
        tree = JoinTree.left_deep(["a", "b", "c"])
        plan = build_physical_plan(
            tree,
            chain_query,
            small_db,
            join_operators={frozenset(["a", "b"]): MergeJoin},
        )
        joins = [n for n in plan.iter_nodes() if isinstance(n, MergeJoin)]
        assert any(n.aliases == frozenset(["a", "b"]) for n in joins)

    def test_infeasible_pinned_operator_degrades(self, small_db):
        q = parse_query("SELECT * FROM a, c", name="cross")
        tree = JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("c"))
        plan = build_physical_plan(
            tree, q, small_db, join_operators={frozenset(["a", "c"]): HashJoin}
        )
        assert isinstance(plan, NestedLoopJoin)

    def test_plan_executes_correctly(self, small_db, chain_query):
        tree = JoinTree.left_deep(["c", "b", "a"])
        plan = build_physical_plan(tree, chain_query, small_db)
        result = small_db.execute_plan(plan, chain_query)
        assert result.rows == brute_force_count(small_db, chain_query)


class TestPlanner:
    def test_optimize_end_to_end(self, small_db, chain_query):
        planner = Planner(small_db)
        result = planner.optimize(chain_query)
        assert result.cost.total > 0
        assert result.planning_time_ms > 0
        assert result.used_exhaustive_search
        executed = small_db.execute_plan(result.plan, chain_query)
        assert executed.rows == brute_force_count(small_db, chain_query)

    def test_geqo_threshold_switches_algorithm(self, small_db, chain_query):
        planner = Planner(small_db, geqo_threshold=2)
        result = planner.optimize(chain_query)
        assert not result.used_exhaustive_search

    def test_complete_plan_for_given_order(self, small_db, chain_query):
        planner = Planner(small_db)
        tree = JoinTree.left_deep(["c", "b", "a"])
        plan = planner.complete_plan(tree, chain_query)
        assert plan.aliases == frozenset(["a", "b", "c"])

    def test_aggregate_query_gets_aggregate_root(self, small_db):
        q = parse_query(
            "SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id", name="agg"
        )
        planner = Planner(small_db)
        result = planner.optimize(q)
        from repro.db.plans import _Aggregate

        assert isinstance(result.plan, _Aggregate)
        executed = small_db.execute_plan(result.plan, q)
        assert executed.aggregates["COUNT(*)"][0] == brute_force_count(small_db, q)

    def test_bad_threshold_rejected(self, small_db):
        with pytest.raises(ValueError):
            Planner(small_db, geqo_threshold=1)

    def test_expert_beats_random_on_cost(self, small_db, chain_query):
        import numpy as np

        from repro.optimizer.join_search import random_join_tree

        planner = Planner(small_db)
        expert = planner.optimize(chain_query).cost.total
        rng = np.random.default_rng(3)
        random_costs = []
        for _ in range(10):
            tree = random_join_tree(chain_query, rng, avoid_cross_products=False)
            plan = planner.complete_plan(tree, chain_query)
            random_costs.append(small_db.plan_cost(plan, chain_query).total)
        assert expert <= min(random_costs) * 1.05
