"""Tests for repro.db.cardinality."""

import numpy as np
import pytest

from repro.db.plans import HashJoin, JoinTree, NestedLoopJoin, SeqScan
from repro.db.predicates import ColumnRef, CompareOp, Comparison, JoinPredicate
from repro.db.query import parse_query
from tests.helpers import brute_force_count


@pytest.fixture()
def chain_query(small_db):
    q = parse_query(
        "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
        name="chain",
    )
    q.validate_against(small_db.schema)
    return q


class TestScanEstimates:
    def test_no_predicate_full_rows(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        assert cards.scan_rows("a") == pytest.approx(80, rel=0.01)
        assert cards.base_rows("c") == 400

    def test_selection_reduces_rows(self, small_db):
        q = parse_query("SELECT * FROM a WHERE a.x = 0", name="sel")
        cards = small_db.cardinalities(q)
        assert 1 <= cards.scan_rows("a") < 80

    def test_estimates_at_least_one(self, small_db):
        q = parse_query("SELECT * FROM a WHERE a.x = 999999", name="none")
        cards = small_db.cardinalities(q)
        assert cards.scan_rows("a") >= 1.0

    def test_conjunction_independence(self, small_db):
        q1 = parse_query("SELECT * FROM a WHERE a.x = 1", name="one")
        q2 = parse_query("SELECT * FROM a WHERE a.x = 1 AND a.f < 50", name="two")
        c1 = small_db.cardinalities(q1).scan_rows("a")
        c2 = small_db.cardinalities(q2).scan_rows("a")
        assert c2 <= c1


class TestJoinEstimates:
    def test_join_selectivity_in_unit_interval(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        for pred in chain_query.joins:
            sel = cards.join_selectivity(pred)
            assert 0 < sel <= 1

    def test_order_independent(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        left = JoinTree.join(
            JoinTree.join(JoinTree.leaf("a"), JoinTree.leaf("b")), JoinTree.leaf("c")
        )
        right = JoinTree.join(
            JoinTree.leaf("a"), JoinTree.join(JoinTree.leaf("b"), JoinTree.leaf("c"))
        )
        assert cards.tree_rows(left) == pytest.approx(cards.tree_rows(right))

    def test_fk_join_estimate_reasonable(self, small_db):
        q = parse_query("SELECT * FROM a, b WHERE a.id = b.a_id", name="fk")
        cards = small_db.cardinalities(q)
        est = cards.rows_for_aliases(frozenset(["a", "b"]))
        truth = brute_force_count(small_db, q)
        # FK join truth is |b| = 200; estimate should be within 3x.
        assert truth == 200
        assert truth / 3 <= est <= truth * 3

    def test_cross_product_estimate(self, small_db):
        q = parse_query("SELECT * FROM a, c", name="cross")
        cards = small_db.cardinalities(q)
        assert cards.rows_for_aliases(frozenset(["a", "c"])) == pytest.approx(
            80 * 400, rel=0.05
        )

    def test_memoization_consistent(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        s = frozenset(["a", "b", "c"])
        assert cards.rows_for_aliases(s) == cards.rows_for_aliases(s)


class TestPlanRows:
    def test_scan_and_join_nodes(self, small_db, chain_query):
        cards = small_db.cardinalities(chain_query)
        scan_a = SeqScan("a", "a")
        scan_b = SeqScan("b", "b")
        join = HashJoin(
            scan_a,
            scan_b,
            (JoinPredicate(ColumnRef("a", "id"), ColumnRef("b", "a_id")),),
        )
        assert cards.plan_rows(scan_a) == pytest.approx(cards.scan_rows("a"))
        assert cards.plan_rows(join) == pytest.approx(
            cards.rows_for_aliases(frozenset(["a", "b"]))
        )

    def test_correlated_predicates_underestimated(self, small_db):
        """Independence misestimates correlated conjunctions — the deliberate
        flaw the paper's Section 4 argument needs."""
        table = small_db.tables["a"]
        x = table.column("x")
        y = table.column("y")
        # pick the most common (x, y) pair — correlated by construction
        pairs, counts = np.unique(np.stack([x, y]), axis=1, return_counts=True)
        best = counts.argmax()
        xv, yv = pairs[0, best], pairs[1, best]
        q = parse_query(
            f"SELECT * FROM a WHERE a.x = {xv} AND a.y = {yv}", name="corr"
        )
        est = small_db.cardinalities(q).scan_rows("a")
        truth = ((x == xv) & (y == yv)).sum()
        assert est < truth  # independence multiplies, truth doesn't
