"""Tests for repro.core.featurize: slot state and vectorization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.featurize import QueryFeaturizer, SlotState
from repro.db.plans import JoinTree
from repro.db.query import parse_query


@pytest.fixture()
def chain_query(small_db):
    q = parse_query(
        "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
        name="chain",
    )
    q.validate_against(small_db.schema)
    return q


@pytest.fixture()
def featurizer(small_db):
    return QueryFeaturizer(small_db.schema, max_relations=5)


class TestSlotState:
    def test_initial_slots(self, chain_query):
        state = SlotState(chain_query, 5)
        assert state.n_subtrees == 3
        assert state.occupied == [0, 1, 2]
        assert not state.done

    def test_too_many_relations_rejected(self, chain_query):
        with pytest.raises(ValueError):
            SlotState(chain_query, 2)

    def test_join_merges_to_min_slot(self, chain_query):
        state = SlotState(chain_query, 5)
        merged = state.join(2, 0)  # c joins a: left = slot 2 (c)
        assert state.occupied == [0, 1]
        assert state.slots[0] is merged
        assert merged.left.alias == "c"
        assert merged.right.alias == "a"

    def test_join_empty_slot_rejected(self, chain_query):
        state = SlotState(chain_query, 5)
        with pytest.raises(ValueError):
            state.join(0, 4)

    def test_join_self_rejected(self, chain_query):
        state = SlotState(chain_query, 5)
        with pytest.raises(ValueError):
            state.join(1, 1)

    def test_tree_requires_done(self, chain_query):
        state = SlotState(chain_query, 5)
        with pytest.raises(RuntimeError):
            state.tree()
        state.join(0, 1)
        state.join(0, 2)
        assert state.done
        assert state.tree().aliases == frozenset(["a", "b", "c"])

    def test_connected(self, chain_query):
        state = SlotState(chain_query, 5)
        # slots: 0=a, 1=b, 2=c; a-b and b-c are joined, a-c is not
        assert state.connected(0, 1)
        assert state.connected(1, 2)
        assert not state.connected(0, 2)


class TestFeaturizer:
    def test_state_dim_consistent(self, featurizer, chain_query, small_db):
        state = SlotState(chain_query, featurizer.max_relations)
        vec = featurizer.featurize(state, small_db.cardinalities(chain_query))
        assert vec.shape == (featurizer.state_dim,)

    def test_featurize_without_cards(self, featurizer, chain_query):
        state = SlotState(chain_query, featurizer.max_relations)
        vec = featurizer.featurize(state)
        assert np.isfinite(vec).all()

    def test_subtree_vector_depth_encoding(self, featurizer, chain_query):
        leaf = JoinTree.leaf("a")
        vec = featurizer.subtree_vector(leaf, chain_query)
        idx = featurizer.table_index["a"]
        assert vec[idx] == 1.0  # depth 0 -> 1/(0+1)
        joined = JoinTree.join(leaf, JoinTree.leaf("b"))
        vec2 = featurizer.subtree_vector(joined, chain_query)
        assert vec2[idx] == 0.5  # depth 1 -> 1/2

    def test_join_changes_state_vector(self, featurizer, chain_query):
        state = SlotState(chain_query, featurizer.max_relations)
        before = featurizer.featurize(state)
        state.join(0, 1)
        after = featurizer.featurize(state)
        assert not np.array_equal(before, after)

    def test_pair_mask_respects_connectivity(self, featurizer, chain_query):
        state = SlotState(chain_query, featurizer.max_relations)
        mask = featurizer.pair_mask(state, forbid_cross_products=True)
        assert mask[featurizer.pair_index[(0, 1)]]  # a-b connected
        assert not mask[featurizer.pair_index[(0, 2)]]  # a-c not connected

    def test_pair_mask_cross_products_allowed(self, featurizer, chain_query):
        state = SlotState(chain_query, featurizer.max_relations)
        mask = featurizer.pair_mask(state, forbid_cross_products=False)
        assert mask[featurizer.pair_index[(0, 2)]]

    def test_pair_mask_cross_fallback_when_disconnected(self, featurizer, small_db):
        q = parse_query("SELECT * FROM a, c", name="disc")
        state = SlotState(q, featurizer.max_relations)
        mask = featurizer.pair_mask(state, forbid_cross_products=True)
        assert mask.any()  # cross products become legal as a last resort

    def test_empty_slots_never_maskable(self, featurizer, chain_query):
        state = SlotState(chain_query, featurizer.max_relations)
        mask = featurizer.pair_mask(state, forbid_cross_products=False)
        for (i, j), idx in featurizer.pair_index.items():
            if i >= 3 or j >= 3:
                assert not mask[idx]

    def test_min_relations_rejected(self, small_db):
        with pytest.raises(ValueError):
            QueryFeaturizer(small_db.schema, max_relations=1)


class TestActionsForTree:
    def test_roundtrip_left_deep(self, featurizer, chain_query):
        tree = JoinTree.left_deep(["a", "b", "c"])
        actions = featurizer.actions_for_tree(tree, chain_query)
        state = SlotState(chain_query, featurizer.max_relations)
        for action in actions:
            i, j = featurizer.decode_pair(action)
            state.join(i, j)
        assert state.done
        assert state.tree().render() == tree.render()

    def test_roundtrip_bushy(self, small_db):
        q = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="q4",
        )
        featurizer = QueryFeaturizer(small_db.schema, max_relations=6)
        tree = JoinTree.join(
            JoinTree.join(JoinTree.leaf("b"), JoinTree.leaf("c")),
            JoinTree.leaf("a"),
        )
        actions = featurizer.actions_for_tree(tree, q)
        state = SlotState(q, featurizer.max_relations)
        for action in actions:
            i, j = featurizer.decode_pair(action)
            state.join(i, j)
        assert state.tree().render() == tree.render()

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random_trees(self, small_db, seed):
        from repro.optimizer.join_search import random_join_tree

        q = parse_query(
            "SELECT * FROM a, b, c WHERE a.id = b.a_id AND b.id = c.b_id",
            name="qr",
        )
        featurizer = QueryFeaturizer(small_db.schema, max_relations=4)
        tree = random_join_tree(q, np.random.default_rng(seed))
        actions = featurizer.actions_for_tree(tree, q)
        state = SlotState(q, featurizer.max_relations)
        for action in actions:
            i, j = featurizer.decode_pair(action)
            state.join(i, j)
        assert state.tree().render() == tree.render()
