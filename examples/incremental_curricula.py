"""Incremental learning curricula (paper §5.3, Figures 6-9).

Run:  python examples/incremental_curricula.py

Trains one agent per decomposition of Figure 7 — pipeline, relations,
hybrid — plus a flat (no-curriculum) baseline on the full search space,
and prints per-phase progress. Also demonstrates the action-layer
growth variant ("the action space can be extended", §5.3.1).
"""

import numpy as np

from repro.core.incremental import (
    IncrementalTrainer,
    flat_curriculum,
    hybrid_curriculum,
    pipeline_curriculum,
    relations_curriculum,
)
from repro.rl.reinforce import ReinforceConfig
from repro.workloads import make_imdb_database

EPISODES_PER_PHASE = 60


def main() -> None:
    db = make_imdb_database(scale=0.03, seed=11, sample_size=5000)

    curricula = {
        "pipeline": pipeline_curriculum(EPISODES_PER_PHASE, max_relations=5),
        "relations": relations_curriculum(
            EPISODES_PER_PHASE, relation_steps=(2, 3, 5)
        ),
        "hybrid": hybrid_curriculum(EPISODES_PER_PHASE, final_relations=5),
        "flat": flat_curriculum(EPISODES_PER_PHASE * 4, max_relations=5),
    }

    for name, curriculum in curricula.items():
        trainer = IncrementalTrainer(
            db,
            np.random.default_rng(2),
            queries_per_phase=30,
            batch_size=8,
            agent_config=ReinforceConfig(lr=1e-3),
        )
        results = trainer.run(curriculum)
        print(f"{name} curriculum:")
        for r in results:
            rel = r.log.relative_costs()
            print(
                f"  {r.phase.name:14s} stages={r.phase.stages!s:60s} "
                f"<= {r.phase.max_relations} rel   "
                f"median rel. cost {np.median(rel):.2f}"
            )
        print(f"  final quality: {trainer.final_quality(results, tail=30):.2f}\n")

    print("action-layer growth variant (pipeline curriculum):")
    trainer = IncrementalTrainer(
        db,
        np.random.default_rng(4),
        queries_per_phase=20,
        batch_size=8,
        grow_actions=True,
    )
    for phase in pipeline_curriculum(20, max_relations=4):
        trainer.run([phase])
        print(
            f"  after {phase.name}: action layer has "
            f"{trainer.agent.policy_net.out_features} outputs"
        )


if __name__ == "__main__":
    main()
