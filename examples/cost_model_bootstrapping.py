"""Cost-model bootstrapping (paper §5.2), all three switch modes.

Run:  python examples/cost_model_bootstrapping.py

Phase 1 trains on the optimizer's cost model ("training wheels"); at
the switch, latency becomes the reward — naively, scaled with the
paper's r_l formula, or via transfer learning. The example prints the
reward scale around the switch for each mode so the §5.2 discontinuity
is visible.
"""

import numpy as np

from repro.core.bootstrap import BootstrapConfig, BootstrapTrainer
from repro.workloads import job_lite_workload, make_imdb_database


def main() -> None:
    db = make_imdb_database(scale=0.03, seed=5, sample_size=5000)
    workload = job_lite_workload(variants=("a", "b")).filter(
        lambda q: 4 <= q.n_relations <= 7
    )

    for mode in ("naive", "scaled", "transfer"):
        config = BootstrapConfig(
            phase1_episodes=200,
            phase2_episodes=100,
            calibration_episodes=15,
            mode=mode,
            batch_size=8,
            latency_budget_factor=30.0,
        )
        trainer = BootstrapTrainer(db, workload, np.random.default_rng(9), config)
        result = trainer.run()

        p1_rewards = [r.reward for r in result.phase1_log.records[-50:]]
        p2_rewards = [r.reward for r in result.phase2_log.records[:50]]
        rel = result.phase2_log.relative_costs()
        print(f"mode={mode}:")
        print(f"  reward scale before switch: median {np.median(p1_rewards):8.2f}")
        print(f"  reward scale after switch:  median {np.median(p2_rewards):8.2f}")
        print(f"  post-switch regression:     {result.regression_ratio(window=40):.2f}x")
        print(f"  phase-2 final rel. cost:    {np.median(rel[-40:]):.2f}")
        if result.scaler is not None:
            s = result.scaler
            print(
                f"  fitted scaler: cost range [{s.c_min:.0f}, {s.c_max:.0f}], "
                f"latency range [{s.l_min:.2f}, {s.l_max:.2f}] ms"
            )
        print()


if __name__ == "__main__":
    main()
