"""Full ReJOIN training run, reproducing the Figure 3 artifacts.

Run:  python examples/train_rejoin.py [episodes]

Trains the join-order agent on the JOB-lite workload with the
cost-model reward (cross products allowed, as in ReJOIN) and prints:
- the Figure 3a convergence series (relative plan cost by episode
  bucket),
- the Figure 3b per-query table for the paper's ten named queries,
- a Figure 3c-style planning-time comparison on a few query sizes.
"""

import sys
import time

import numpy as np

from repro.core import (
    ExpertBaseline,
    JoinOrderEnv,
    Trainer,
    TrainingConfig,
    make_agent,
)
from repro.core.reporting import ascii_table
from repro.core.rewards import CostModelReward
from repro.optimizer import Planner
from repro.rl.ppo import PPOConfig
from repro.workloads import job_lite_workload, make_imdb_database
from repro.workloads.job import FIGURE_3B_QUERIES, job_lite_query


def main() -> None:
    episodes = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    print("building the JOB-lite database...")
    db = make_imdb_database(scale=0.05, seed=42, sample_size=10_000)
    planner = Planner(db, geqo_threshold=8)
    baseline = ExpertBaseline(db, planner)
    workload = job_lite_workload(variants=("a", "b", "c")).filter(
        lambda q: q.n_relations <= 11
    )

    rng = np.random.default_rng(7)
    env = JoinOrderEnv(
        db,
        workload,
        reward_source=CostModelReward(db, "relative", baseline),
        planner=planner,
        rng=rng,
        forbid_cross_products=False,
    )
    agent = make_agent(env, rng, "ppo", PPOConfig(lr=1e-3, entropy_coef=3e-3))
    trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))

    print(f"training for {episodes} episodes "
          f"({len(workload)} queries in the mix)...")
    start = time.time()
    log = trainer.run(episodes)
    print(f"done in {time.time() - start:.0f}s\n")

    print("Figure 3a — plan cost relative to the expert, by episode bucket:")
    bucket = max(1, episodes // 10)
    rel = log.relative_costs()
    rows = [
        (end, f"{np.median(rel[max(0, end - bucket):end]) * 100:.0f}%")
        for end, _ in log.relative_cost_series(bucket_size=bucket)
    ]
    print(ascii_table(["episodes", "median rel. cost"], rows))

    print("\nFigure 3b — final plan cost on the paper's named queries:")
    rows = []
    for name in FIGURE_3B_QUERIES:
        query = job_lite_query(name)
        if query.n_relations > env.featurizer.max_relations:
            continue
        record = trainer.evaluate([query])[name]
        rows.append(
            (name, f"{record.expert_cost:.0f}", f"{record.cost:.0f}",
             f"{record.relative_cost:.2f}x")
        )
    print(ascii_table(["query", "expert", "rejoin", "ratio"], rows))

    print("\nFigure 3c — planning time (ms):")
    rows = []
    for name in ("1a", "12b", "22c"):
        query = job_lite_query(name)
        t0 = time.perf_counter()
        planner.choose_join_order(query)
        expert_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        trainer.evaluate([query])
        rejoin_ms = (time.perf_counter() - t0) * 1e3
        rows.append((name, query.n_relations, f"{expert_ms:.1f}", f"{rejoin_ms:.1f}"))
    print(ascii_table(["query", "relations", "expert (ms)", "rejoin (ms)"], rows))


if __name__ == "__main__":
    main()
