"""Substrate tour: plans, costs, latencies, and why they disagree.

Run:  python examples/explain_and_execute.py

Demonstrates the machinery the paper's Section 4 argument rests on:
- the same query under different join orders and operators,
- the cost model's opinion (from *estimated* cardinalities) vs the
  executor's simulated latency (from *actual* cardinalities),
- a catastrophic plan getting censored by the latency budget.
"""

from repro.db import parse_query
from repro.db.plans import HashJoin, JoinTree, NestedLoopJoin, SeqScan
from repro.optimizer import Planner, build_physical_plan
from repro.workloads import make_imdb_database


def main() -> None:
    db = make_imdb_database(scale=0.03, seed=7, sample_size=5000)
    query = parse_query(
        "SELECT * FROM title AS t, movie_info AS mi, info_type AS it "
        "WHERE mi.movie_id = t.id AND mi.info_type_id = it.id "
        "AND it.info = 3 AND t.production_year BETWEEN 60 AND 100",
        name="tour",
    )
    print(f"query: {query.sql()}\n")

    planner = Planner(db)
    expert = planner.optimize(query)
    print("expert plan:")
    print(db.explain_analyze(expert.plan, query))
    print()

    print("a different join order, physical details completed by the expert:")
    other_tree = JoinTree.join(
        JoinTree.join(JoinTree.leaf("t"), JoinTree.leaf("it")),  # cross product!
        JoinTree.leaf("mi"),
    )
    other = build_physical_plan(other_tree, query, db)
    print(db.explain_analyze(other, query))
    print()

    print("hand-built nested-loop-everywhere plan:")
    nl_plan = NestedLoopJoin(
        NestedLoopJoin(
            SeqScan("t", "title", tuple(query.selections_for("t"))),
            SeqScan("mi", "movie_info"),
            tuple(query.joins_between(["t"], ["mi"])),
        ),
        SeqScan("it", "info_type", tuple(query.selections_for("it"))),
        tuple(query.joins_between(["t", "mi"], ["it"])),
    )
    result = db.execute_plan(nl_plan, query, budget_ms=60_000)
    cost = db.plan_cost(nl_plan, query)
    print(f"  cost model says: {cost.total:.1f}")
    if result.timed_out:
        print("  executor: BUDGET EXCEEDED (catastrophic plan, censored)")
    else:
        print(f"  executor: {result.latency_ms:.2f} ms simulated")
    print()

    print("cost vs latency for the three plans (lower is better):")
    for label, plan in (("expert", expert.plan), ("reordered", other), ("all-NL", nl_plan)):
        c = db.plan_cost(plan, query).total
        r = db.execute_plan(plan, query, budget_ms=60_000)
        latency = "TIMEOUT" if r.timed_out else f"{r.latency_ms:9.2f} ms"
        print(f"  {label:10s} cost={c:12.1f}  latency={latency}")


if __name__ == "__main__":
    main()
