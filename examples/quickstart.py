"""Quickstart: build a database, optimize a query, train a tiny agent.

Run:  python examples/quickstart.py

Walks the full public API in one minute:
1. generate the JOB-lite (IMDB-shaped) database,
2. parse and optimize a SQL query with the traditional expert planner,
3. execute the plan (EXPLAIN ANALYZE style),
4. train a small ReJOIN agent with the cost-model reward and compare
   its plans against the expert's.
"""

import numpy as np

from repro.core import (
    ExpertBaseline,
    JoinOrderEnv,
    Trainer,
    TrainingConfig,
    make_agent,
)
from repro.core.rewards import CostModelReward
from repro.db import parse_query
from repro.optimizer import Planner
from repro.workloads import job_lite_workload, make_imdb_database


def main() -> None:
    print("1) generating the JOB-lite database (IMDB-shaped, synthetic)...")
    db = make_imdb_database(scale=0.03, seed=1, sample_size=5000)
    print(f"   {db.n_tables} tables, {db.total_rows():,} rows\n")

    print("2) optimizing a query with the traditional (expert) planner...")
    query = parse_query(
        "SELECT COUNT(*) FROM title AS t, movie_keyword AS mk, keyword AS k "
        "WHERE mk.movie_id = t.id AND mk.keyword_id = k.id "
        "AND t.production_year > 100",
        name="quickstart",
    )
    planner = Planner(db)
    result = planner.optimize(query)
    print(f"   SQL: {query.sql()}")
    print(f"   estimated cost: {result.cost.total:.1f} "
          f"(planned in {result.planning_time_ms:.1f} ms)\n")

    print("3) executing the plan (estimates vs actuals):")
    print(db.explain_analyze(result.plan, query))
    print()

    print("4) training a small ReJOIN agent (cost-model reward)...")
    workload = job_lite_workload(variants=("a",)).filter(
        lambda q: q.n_relations <= 6
    )
    rng = np.random.default_rng(0)
    baseline = ExpertBaseline(db, planner)
    env = JoinOrderEnv(
        db,
        workload,
        reward_source=CostModelReward(db, "relative", baseline),
        planner=planner,
        rng=rng,
    )
    agent = make_agent(env, rng, "ppo")
    trainer = Trainer(env, agent, baseline, rng, TrainingConfig(batch_size=8))
    log = trainer.run(300)
    rel = log.relative_costs()
    print(f"   episodes: {len(log)}")
    print(f"   plan cost relative to expert — first 50: "
          f"{rel[:50].mean():.2f}x, last 50: {rel[-50:].mean():.2f}x")

    print("\n5) evaluating the trained policy (greedy) per query:")
    for name, record in sorted(trainer.evaluate(list(workload)).items()):
        print(f"   {name}: expert={record.expert_cost:.0f} "
              f"rejoin={record.cost:.0f} ({record.relative_cost:.2f}x)")


if __name__ == "__main__":
    main()
