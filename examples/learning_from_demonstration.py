"""Learning from demonstration (paper §5.1), end to end.

Run:  python examples/learning_from_demonstration.py

1. Record the expert optimizer's episode histories on a workload and
   execute its plans for latencies (steps 1-2 of §5.1).
2. Train the reward-prediction network by imitation (step 3).
3. Fine-tune on observed latency with slip-retraining (steps 4-5).
4. Compare with a tabula-rasa agent: catastrophic plans executed and
   relative latency over time.
"""

import numpy as np

from repro.core import (
    DemonstrationSet,
    ExpertBaseline,
    JoinOrderEnv,
    LfDAgent,
    LfDConfig,
    LfDTrainer,
)
from repro.core.rewards import LatencyReward
from repro.workloads import job_lite_workload, make_imdb_database

EPISODES = 120


def run(imitate: bool, env, demos, baseline, seed: int):
    rng = np.random.default_rng(seed)
    agent = LfDAgent(
        env.state_dim, env.n_actions, rng, LfDConfig(imitation_epochs=30)
    )
    trainer = LfDTrainer(env, agent, demos, baseline, rng)
    if imitate:
        losses = trainer.imitation_phase()
        print(f"   imitation: regression loss {losses[0]:.3f} -> {losses[-1]:.3f}")
    log = trainer.fine_tune(EPISODES)
    return log, trainer


def main() -> None:
    db = make_imdb_database(scale=0.03, seed=3, sample_size=5000)
    workload = job_lite_workload(variants=("a", "b")).filter(
        lambda q: 4 <= q.n_relations <= 7
    )
    baseline = ExpertBaseline(db)
    env = JoinOrderEnv(
        db,
        workload,
        reward_source=LatencyReward(
            db, shaping="relative", baseline=baseline, budget_factor=30.0
        ),
        rng=np.random.default_rng(0),
        forbid_cross_products=False,
    )

    print("1) collecting expert demonstrations (histories + latencies)...")
    demos = DemonstrationSet.collect(env, list(workload))
    print(f"   {len(demos)} episodes, mean expert latency "
          f"{demos.mean_latency():.2f} ms\n")

    print("2-3) LfD agent: imitation, then latency fine-tuning")
    lfd_log, lfd_trainer = run(True, env, demos, baseline, seed=1)

    print("\n4) tabula-rasa agent: latency fine-tuning only")
    raw_log, _ = run(False, env, demos, baseline, seed=1)

    def summarize(label, log):
        rel = log.relative_latencies()
        third = max(1, len(rel) // 3)
        print(f"   {label:12s} catastrophic: {log.timeout_fraction() * 100:4.0f}%   "
              f"early rel. latency: {np.median(rel[:third]):6.2f}   "
              f"final: {np.median(rel[-third:]):6.2f}")

    print("\nresults over", EPISODES, "fine-tuning episodes:")
    summarize("LfD", lfd_log)
    summarize("tabula rasa", raw_log)
    print(f"\n   LfD slip-retrainings triggered: {lfd_trainer.retrain_count}")
    print("   (the LfD agent learns without ever executing the "
          "catastrophic plans the fresh agent stumbles through)")


if __name__ == "__main__":
    main()
